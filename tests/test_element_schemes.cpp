// CSR element protection schemes (paper §VI-A Fig. 1 at 32-bit width, §V-B
// at 64-bit width), exercised through the shared scheme-matrix harness: the
// same encode/decode/single-flip/double-flip contract runs over every scheme
// at both index widths.
#include <gtest/gtest.h>

#include <cstdint>

#include "scheme_matrix.hpp"

namespace {

using namespace abft;

// ---------------------------------------------------------------------------
// Per-element schemes (None / SED / SECDED) x both widths.
// ---------------------------------------------------------------------------

template <class ES>
class PerElementScheme : public ::testing::Test {};

using PerElementTypes = ::testing::Types<
    schemes::ElemNone<std::uint32_t>, schemes::ElemNone<std::uint64_t>,
    schemes::ElemSed<std::uint32_t>, schemes::ElemSed<std::uint64_t>,
    schemes::ElemSecded<std::uint32_t>, schemes::ElemSecded<std::uint64_t>>;
TYPED_TEST_SUITE(PerElementScheme, PerElementTypes);

TYPED_TEST(PerElementScheme, RoundTrip) {
  scheme_matrix::elem_round_trip<TypeParam>();
}

TYPED_TEST(PerElementScheme, SingleBitFlipsAcrossWholeCodeword) {
  scheme_matrix::elem_single_flips<TypeParam>();
}

TYPED_TEST(PerElementScheme, DoubleBitFlipsAcrossValueAndColumn) {
  scheme_matrix::elem_double_flips<TypeParam>();
}

// ---------------------------------------------------------------------------
// Row-granular CRC32C element scheme x both widths.
// ---------------------------------------------------------------------------

template <class ES>
class RowGranularElementScheme : public ::testing::Test {};

using RowGranularTypes =
    ::testing::Types<schemes::ElemCrc32c<std::uint32_t>, schemes::ElemCrc32c<std::uint64_t>>;
TYPED_TEST_SUITE(RowGranularElementScheme, RowGranularTypes);

TYPED_TEST(RowGranularElementScheme, RoundTripVariousRowSizes) {
  scheme_matrix::crc_row_round_trip<TypeParam>();
}

TYPED_TEST(RowGranularElementScheme, SingleFlipAnywhereInRowIsCorrected) {
  scheme_matrix::crc_row_single_flips<TypeParam>();
}

TYPED_TEST(RowGranularElementScheme, TripleFlipNeverReportsOk) {
  scheme_matrix::crc_row_triple_flips_never_ok<TypeParam>();
}

// ---------------------------------------------------------------------------
// Tile-granular CRC32C element scheme x both widths: the slab formats'
// unit-stride codeword layout.
// ---------------------------------------------------------------------------

template <class ES>
class TileGranularElementScheme : public ::testing::Test {};

using TileGranularTypes = ::testing::Types<schemes::ElemCrc32cTile<std::uint32_t>,
                                           schemes::ElemCrc32cTile<std::uint64_t>>;
TYPED_TEST_SUITE(TileGranularElementScheme, TileGranularTypes);

TYPED_TEST(TileGranularElementScheme, GeometryPartitionsAndRoundTrips) {
  scheme_matrix::tile_round_trip<TypeParam>();
}

// Runtime tile geometry: the partition/tail-fold/round-trip contract holds at
// every supported tile size, not just the default.
TYPED_TEST(TileGranularElementScheme, GeometryContractHoldsAtEverySize) {
  for (std::size_t slots : {16u, 32u, 64u, 128u, 256u}) {
    SCOPED_TRACE(slots);
    scheme_matrix::tile_round_trip<TypeParam>(TileGeometry(slots));
  }
}

TYPED_TEST(TileGranularElementScheme, SingleFlipCorrectedAtEveryGeometry) {
  // Step the flipped bit coarsely; the default-geometry test covers the
  // dense sweep, this one covers the tail-fold boundaries per size.
  for (std::size_t slots : {16u, 32u, 128u, 256u}) {
    SCOPED_TRACE(slots);
    scheme_matrix::tile_single_flips<TypeParam>(TileGeometry(slots), 0, 17);
  }
}

TYPED_TEST(TileGranularElementScheme, TripleFlipNeverOkAtEveryGeometry) {
  for (std::size_t slots : {16u, 32u, 128u, 256u}) {
    SCOPED_TRACE(slots);
    scheme_matrix::tile_triple_flips_never_ok<TypeParam>(25, TileGeometry(slots));
  }
}

TYPED_TEST(TileGranularElementScheme, SingleFlipAnywhereInSlabIsCorrected) {
  scheme_matrix::tile_single_flips<TypeParam>();
}

TYPED_TEST(TileGranularElementScheme, TripleFlipNeverReportsOk) {
  scheme_matrix::tile_triple_flips_never_ok<TypeParam>();
}

// ---------------------------------------------------------------------------
// Layout constants per width (paper Fig. 1 vs. §V-B spare-byte layouts).
// ---------------------------------------------------------------------------

TEST(ElemSchemeLimits, ColumnMasksMatchPaperConstraints) {
  // 32-bit: SED <= 2^31-1 columns; SECDED/CRC32C <= 2^24-1 (paper Fig. 1).
  EXPECT_EQ(ElemSed::kColMask, 0x7FFFFFFFu);
  EXPECT_EQ(ElemSecded::kColMask, 0x00FFFFFFu);
  EXPECT_EQ(ElemCrc32c::kColMask, 0x00FFFFFFu);
  // 64-bit: SED <= 2^63-1; SECDED/CRC32C use the spare top byte (< 2^56).
  EXPECT_EQ(schemes::ElemSed<std::uint64_t>::kColMask, ~std::uint64_t{0} >> 1);
  EXPECT_EQ(schemes::ElemSecded<std::uint64_t>::kColMask,
            (std::uint64_t{1} << 56) - 1);
  EXPECT_EQ(schemes::ElemCrc32c<std::uint64_t>::kColMask,
            (std::uint64_t{1} << 56) - 1);
  // Per-row CRC needs >= 4 elements to hold its 32 checksum bits, either width.
  EXPECT_EQ(ElemCrc32c::kMinRowNnz, 4u);
  EXPECT_EQ(schemes::ElemCrc32c<std::uint64_t>::kMinRowNnz, 4u);
  // The tile layout keeps the same spare-bit accounting as the per-row CRC:
  // same masked column range, same >= 4-slot minimum (now per tile).
  EXPECT_EQ(ElemCrc32cTile::kColMask, ElemCrc32c::kColMask);
  EXPECT_EQ(schemes::ElemCrc32cTile<std::uint64_t>::kColMask,
            schemes::ElemCrc32c<std::uint64_t>::kColMask);
  EXPECT_EQ(ElemCrc32cTile::kMinRowNnz, 4u);
  EXPECT_EQ(ElemCrc32cTile::kDefaultTileSlots, 64u);
  EXPECT_EQ(TileGeometry{}.slots(), 64u);
}

TEST(ElemSchemeLimits, SecdedCodewordsMatchPaperLayouts) {
  // One shared SECDED core, two genuinely different codeword lengths:
  // SECDED(96,88) at 32-bit width, SECDED(128,120) at 64-bit width.
  EXPECT_EQ(schemes::ElemSecded<std::uint32_t>::Code::kDataBits, 88u);
  EXPECT_EQ(schemes::ElemSecded<std::uint64_t>::Code::kDataBits, 120u);
  EXPECT_EQ(schemes::ElemSecded<std::uint32_t>::Code::kRedundancyBits, 8u);
  EXPECT_EQ(schemes::ElemSecded<std::uint64_t>::Code::kRedundancyBits, 8u);
}

}  // namespace
