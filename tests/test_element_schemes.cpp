// CSR element protection schemes (paper §VI-A, Fig. 1): 96-bit element
// codewords (SED / SECDED(96,88)) and the per-row CRC32C layout.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "abft/element_schemes.hpp"
#include "common/bits.hpp"
#include "common/rng.hpp"

namespace {

using namespace abft;

// ---------------------------------------------------------------------------
// ElemSed: parity over the 96-bit (value, column) pair.
// ---------------------------------------------------------------------------

TEST(ElemSed, RoundTrip) {
  Xoshiro256 rng(1);
  for (int rep = 0; rep < 200; ++rep) {
    double v = rng.uniform(-1e6, 1e6);
    std::uint32_t c = static_cast<std::uint32_t>(rng()) & ElemSed::kColMask;
    const double v0 = v;
    const std::uint32_t c0 = c;
    ElemSed::encode(v, c);
    EXPECT_EQ(v, v0) << "SED must not alter the value";
    double vd;
    std::uint32_t cd;
    EXPECT_EQ(ElemSed::decode(v, c, vd, cd), CheckOutcome::ok);
    EXPECT_EQ(vd, v0);
    EXPECT_EQ(cd, c0);
  }
}

class ElemSedValueFlips : public ::testing::TestWithParam<unsigned> {};

TEST_P(ElemSedValueFlips, DetectsValueBitFlip) {
  Xoshiro256 rng(2);
  double v = rng.uniform(-10, 10);
  std::uint32_t c = 12345;
  ElemSed::encode(v, c);
  v = bits_to_double(flip_bit(double_to_bits(v), GetParam()));
  double vd;
  std::uint32_t cd;
  EXPECT_EQ(ElemSed::decode(v, c, vd, cd), CheckOutcome::uncorrectable);
}

INSTANTIATE_TEST_SUITE_P(AllBits, ElemSedValueFlips, ::testing::Range(0u, 64u));

class ElemSedColFlips : public ::testing::TestWithParam<unsigned> {};

TEST_P(ElemSedColFlips, DetectsColumnBitFlip) {
  Xoshiro256 rng(3);
  double v = rng.uniform(-10, 10);
  std::uint32_t c = 99;
  ElemSed::encode(v, c);
  c ^= (1u << GetParam());
  double vd;
  std::uint32_t cd;
  EXPECT_EQ(ElemSed::decode(v, c, vd, cd), CheckOutcome::uncorrectable);
}

INSTANTIATE_TEST_SUITE_P(AllBits, ElemSedColFlips, ::testing::Range(0u, 32u));

TEST(ElemSed, MissesDoubleFlip) {
  double v = 3.25;
  std::uint32_t c = 77;
  ElemSed::encode(v, c);
  v = bits_to_double(flip_bit(flip_bit(double_to_bits(v), 5), 40));
  double vd;
  std::uint32_t cd;
  EXPECT_EQ(ElemSed::decode(v, c, vd, cd), CheckOutcome::ok);
}

// ---------------------------------------------------------------------------
// ElemSecded: SECDED(96,88) with redundancy in the column's top byte.
// ---------------------------------------------------------------------------

TEST(ElemSecded, RoundTrip) {
  Xoshiro256 rng(4);
  for (int rep = 0; rep < 200; ++rep) {
    double v = rng.uniform(-1e6, 1e6);
    std::uint32_t c = static_cast<std::uint32_t>(rng()) & ElemSecded::kColMask;
    const double v0 = v;
    const std::uint32_t c0 = c;
    ElemSecded::encode(v, c);
    double vd;
    std::uint32_t cd;
    EXPECT_EQ(ElemSecded::decode(v, c, vd, cd), CheckOutcome::ok);
    EXPECT_EQ(vd, v0);
    EXPECT_EQ(cd, c0);
  }
}

class ElemSecdedValueFlips : public ::testing::TestWithParam<unsigned> {};

TEST_P(ElemSecdedValueFlips, CorrectsValueBitFlip) {
  Xoshiro256 rng(5);
  double v = rng.uniform(-10, 10);
  std::uint32_t c = 4242;
  const double v0 = v;
  ElemSecded::encode(v, c);
  const std::uint32_t enc_c = c;
  v = bits_to_double(flip_bit(double_to_bits(v), GetParam()));
  double vd;
  std::uint32_t cd;
  EXPECT_EQ(ElemSecded::decode(v, c, vd, cd), CheckOutcome::corrected);
  EXPECT_EQ(vd, v0);
  EXPECT_EQ(cd, 4242u);
  EXPECT_EQ(v, v0) << "correction must write back";
  EXPECT_EQ(c, enc_c);
}

INSTANTIATE_TEST_SUITE_P(AllBits, ElemSecdedValueFlips, ::testing::Range(0u, 64u));

class ElemSecdedColFlips : public ::testing::TestWithParam<unsigned> {};

TEST_P(ElemSecdedColFlips, CorrectsColumnBitFlip) {
  Xoshiro256 rng(6);
  double v = rng.uniform(-10, 10);
  std::uint32_t c = 0x00ABCDEFu;
  const double v0 = v;
  ElemSecded::encode(v, c);
  c ^= (1u << GetParam());
  double vd;
  std::uint32_t cd;
  EXPECT_EQ(ElemSecded::decode(v, c, vd, cd), CheckOutcome::corrected) << GetParam();
  EXPECT_EQ(vd, v0);
  EXPECT_EQ(cd, 0x00ABCDEFu);
}

INSTANTIATE_TEST_SUITE_P(AllBits, ElemSecdedColFlips, ::testing::Range(0u, 32u));

TEST(ElemSecded, DetectsDoubleFlipAcrossValueAndColumn) {
  Xoshiro256 rng(7);
  for (unsigned i = 0; i < 64; i += 7) {
    for (unsigned j = 0; j < 24; j += 5) {
      double v = rng.uniform(-10, 10);
      std::uint32_t c = 1000 + j;
      ElemSecded::encode(v, c);
      v = bits_to_double(flip_bit(double_to_bits(v), i));
      c ^= (1u << j);
      double vd;
      std::uint32_t cd;
      EXPECT_EQ(ElemSecded::decode(v, c, vd, cd), CheckOutcome::uncorrectable)
          << i << "," << j;
    }
  }
}

// ---------------------------------------------------------------------------
// ElemCrc32c: one checksum per row spread over the first 4 column top bytes.
// ---------------------------------------------------------------------------

struct Row {
  std::vector<double> values;
  std::vector<std::uint32_t> cols;
};

Row make_row(std::size_t nnz, Xoshiro256& rng) {
  Row row;
  for (std::size_t k = 0; k < nnz; ++k) {
    row.values.push_back(rng.uniform(-100, 100));
    row.cols.push_back(static_cast<std::uint32_t>(rng()) & ElemCrc32c::kColMask);
  }
  return row;
}

TEST(ElemCrc32c, RoundTripVariousRowSizes) {
  Xoshiro256 rng(8);
  for (std::size_t nnz : {4u, 5u, 8u, 13u, 64u}) {
    Row row = make_row(nnz, rng);
    const Row original = row;
    ElemCrc32c::encode_row(row.values.data(), row.cols.data(), nnz);
    EXPECT_EQ(ElemCrc32c::decode_row(row.values.data(), row.cols.data(), nnz),
              CheckOutcome::ok);
    for (std::size_t k = 0; k < nnz; ++k) {
      EXPECT_EQ(row.values[k], original.values[k]);
      EXPECT_EQ(row.cols[k] & ElemCrc32c::kColMask, original.cols[k]);
    }
  }
}

class ElemCrcRowFlips : public ::testing::TestWithParam<std::tuple<int, unsigned>> {};

TEST_P(ElemCrcRowFlips, CorrectsSingleValueFlipInRow) {
  const auto [k, bit] = GetParam();
  Xoshiro256 rng(9);
  Row row = make_row(5, rng);  // TeaLeaf's 5-point row width
  ElemCrc32c::encode_row(row.values.data(), row.cols.data(), 5);
  const Row clean = row;
  row.values[static_cast<std::size_t>(k)] = bits_to_double(
      flip_bit(double_to_bits(row.values[static_cast<std::size_t>(k)]), bit));
  EXPECT_EQ(ElemCrc32c::decode_row(row.values.data(), row.cols.data(), 5),
            CheckOutcome::corrected);
  for (std::size_t e = 0; e < 5; ++e) {
    EXPECT_EQ(double_to_bits(row.values[e]), double_to_bits(clean.values[e]));
    EXPECT_EQ(row.cols[e], clean.cols[e]);
  }
}

INSTANTIATE_TEST_SUITE_P(Sampled, ElemCrcRowFlips,
                         ::testing::Combine(::testing::Values(0, 2, 4),
                                            ::testing::Values(0u, 11u, 33u, 52u, 63u)));

TEST(ElemCrc32c, CorrectsColumnFlipInRow) {
  Xoshiro256 rng(10);
  Row row = make_row(6, rng);
  ElemCrc32c::encode_row(row.values.data(), row.cols.data(), 6);
  const Row clean = row;
  row.cols[3] ^= (1u << 13);
  EXPECT_EQ(ElemCrc32c::decode_row(row.values.data(), row.cols.data(), 6),
            CheckOutcome::corrected);
  for (std::size_t e = 0; e < 6; ++e) EXPECT_EQ(row.cols[e], clean.cols[e]);
}

TEST(ElemCrc32c, CorrectsChecksumStorageFlip) {
  Xoshiro256 rng(11);
  Row row = make_row(5, rng);
  ElemCrc32c::encode_row(row.values.data(), row.cols.data(), 5);
  const Row clean = row;
  row.cols[1] ^= (1u << 29);  // top byte = checksum storage
  EXPECT_EQ(ElemCrc32c::decode_row(row.values.data(), row.cols.data(), 5),
            CheckOutcome::corrected);
  for (std::size_t e = 0; e < 5; ++e) EXPECT_EQ(row.cols[e], clean.cols[e]);
}

TEST(ElemCrc32c, TripleFlipNeverReportsOk) {
  Xoshiro256 rng(12);
  for (int rep = 0; rep < 100; ++rep) {
    Row row = make_row(5, rng);
    ElemCrc32c::encode_row(row.values.data(), row.cols.data(), 5);
    for (int f = 0; f < 3; ++f) {
      const std::size_t k = rng.below(5);
      row.values[k] =
          bits_to_double(flip_bit(double_to_bits(row.values[k]), rng.below(64)));
    }
    EXPECT_NE(ElemCrc32c::decode_row(row.values.data(), row.cols.data(), 5),
              CheckOutcome::ok)
        << rep;
  }
}

TEST(ElemSchemeLimits, ColumnMasksMatchPaperConstraints) {
  // SED: <= 2^31-1 columns; SECDED/CRC32C: <= 2^24-1 columns (paper Fig. 1).
  EXPECT_EQ(ElemSed::kColMask, 0x7FFFFFFFu);
  EXPECT_EQ(ElemSecded::kColMask, 0x00FFFFFFu);
  EXPECT_EQ(ElemCrc32c::kColMask, 0x00FFFFFFu);
  // Per-row CRC needs >= 4 elements to hold its 32 checksum bits.
  EXPECT_EQ(ElemCrc32c::kMinRowNnz, 4u);
}

}  // namespace
