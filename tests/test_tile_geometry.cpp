// TileGeometry: the runtime crc32c-tile partition (power-of-two slots in
// [16, 256], tail folding, >= 4-slot tiles). Scheme-level round-trip and
// flip tests at every geometry live in test_element_schemes.cpp; this suite
// covers the partition arithmetic itself.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <stdexcept>
#include <string>

#include "abft/dispatch.hpp"
#include "abft/tile_geometry.hpp"

namespace {

using namespace abft;

constexpr std::size_t kValid[] = {16, 32, 64, 128, 256};

TEST(TileGeometry, DefaultIsTheOriginalFixed64) {
  const TileGeometry g;
  EXPECT_EQ(g.slots(), 64u);
  EXPECT_EQ(g.slots(), TileGeometry::kDefaultSlots);
  EXPECT_EQ(g, TileGeometry{64});
}

TEST(TileGeometry, AcceptsEveryPowerOfTwoInRange) {
  for (const std::size_t s : kValid) {
    SCOPED_TRACE(s);
    EXPECT_TRUE(TileGeometry::valid_slots(s));
    EXPECT_EQ(TileGeometry{s}.slots(), s);
    EXPECT_EQ(TileGeometry{s}.max_tile_span(), s + TileGeometry::kSpareSlots - 1);
  }
}

TEST(TileGeometry, RejectsEverythingElse) {
  for (const std::size_t s : {0u, 1u, 4u, 8u, 15u, 17u, 24u, 48u, 63u, 65u,
                              96u, 129u, 255u, 257u, 512u, 1024u}) {
    SCOPED_TRACE(s);
    EXPECT_FALSE(TileGeometry::valid_slots(s));
    EXPECT_THROW(TileGeometry{s}, std::invalid_argument);
  }
}

TEST(TileGeometry, InvalidSizeErrorNamesTheValidValues) {
  // The same typed error and valid-values phrasing the parse_* helpers use,
  // so CLI layers can surface either identically.
  try {
    TileGeometry g{48};
    FAIL() << "48 slots must not construct";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(),
                 "invalid tile-slots: '48' (valid tile-slots are: "
                 "16, 32, 64, 128, 256)");
  }
}

TEST(TileGeometry, ParseTileSlotsAgreesWithValidation) {
  for (const std::size_t s : kValid) {
    EXPECT_EQ(parse_tile_slots(std::to_string(s)), s);
  }
  EXPECT_THROW(parse_tile_slots("0"), std::invalid_argument);
  EXPECT_THROW(parse_tile_slots("48"), std::invalid_argument);
  EXPECT_THROW(parse_tile_slots("sixty-four"), std::invalid_argument);
}

TEST(TileGeometry, NumTilesTailFoldRule) {
  const TileGeometry g{64};
  EXPECT_EQ(g.num_tiles(0), 0u);
  EXPECT_EQ(g.num_tiles(64), 1u);
  EXPECT_EQ(g.num_tiles(128), 2u);
  // Tails shorter than kSpareSlots fold backwards into the previous tile...
  EXPECT_EQ(g.num_tiles(65), 1u);
  EXPECT_EQ(g.num_tiles(67), 1u);
  // ...tails of kSpareSlots or more stand alone...
  EXPECT_EQ(g.num_tiles(68), 2u);
  EXPECT_EQ(g.num_tiles(127), 2u);
  // ...and a slab smaller than one tile is its own (short) tile.
  EXPECT_EQ(g.num_tiles(3), 1u);
  EXPECT_EQ(g.num_tiles(4), 1u);
  EXPECT_EQ(g.num_tiles(63), 1u);
}

TEST(TileGeometry, PartitionInvariantsAtEverySizeAndTotal) {
  for (const std::size_t s : kValid) {
    const TileGeometry g{s};
    for (std::size_t total = TileGeometry::kSpareSlots; total <= 3 * s + 9; ++total) {
      SCOPED_TRACE(::testing::Message() << "slots=" << s << " total=" << total);
      const std::size_t n = g.num_tiles(total);
      ASSERT_GE(n, 1u);

      // Tiles partition [0, total): contiguous, exhaustive, within span
      // bounds, and never shorter than the spare-slot floor.
      std::size_t covered = 0;
      for (std::size_t t = 0; t < n; ++t) {
        ASSERT_EQ(g.tile_begin(t), covered);
        const std::size_t span = g.tile_slots(t, total);
        ASSERT_GE(span, std::min(total, TileGeometry::kSpareSlots));
        ASSERT_LE(span, g.max_tile_span());
        covered += span;
      }
      ASSERT_EQ(covered, total);

      // tile_of agrees with the partition for every slot, including the
      // folded-tail slots past the last nominal boundary.
      for (std::size_t slot = 0; slot < total; ++slot) {
        const std::size_t t = g.tile_of(slot, total);
        ASSERT_LT(t, n);
        ASSERT_GE(slot, g.tile_begin(t));
        ASSERT_LT(slot, g.tile_begin(t) + g.tile_slots(t, total));
      }
    }
  }
}

TEST(TileGeometry, TileOfClampsFoldedTailSlots) {
  const TileGeometry g{16};
  // total = 33: tiles [0,16) [16,33) — the 1-slot tail folded into tile 1.
  EXPECT_EQ(g.num_tiles(33), 2u);
  EXPECT_EQ(g.tile_slots(1, 33), 17u);
  EXPECT_EQ(g.tile_of(32, 33), 1u);  // nominal tile 2 clamps to the last tile
  EXPECT_EQ(g.tile_of(15, 33), 0u);
  EXPECT_EQ(g.tile_of(16, 33), 1u);
}

}  // namespace
