// ProtectedEll — the ELLPACK protected container through the format-generic
// stack: typed encode/decode/flip suites at both index widths (shared
// harness, tests/scheme_matrix.hpp), bit-identical SpMV equivalence against
// the CSR path (raw spans and protected kernels, every dispatchable scheme
// combination), and CG-on-ELL with injected faults, including the generic
// checkpoint-restart wrapper.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "abft/abft.hpp"
#include "common/rng.hpp"
#include "faults/injector.hpp"
#include "scheme_matrix.hpp"
#include "solvers/solvers.hpp"
#include "sparse/generators.hpp"
#include "sparse/transform.hpp"

namespace {

using namespace abft;

// ---------------------------------------------------------------------------
// Typed (width x element x structure) suite through the shared harness.
// ---------------------------------------------------------------------------

template <class Combo>
class ProtectedEllTest : public ::testing::Test {};

template <class I, class E, class S>
struct ComboEll {
  using Index = I;
  using ES = E;
  using SS = S;
  using PM = ProtectedEll<I, E, S>;
};

using CombosEll = ::testing::Types<
    // 32-bit width: uniform scheme rows of the matrix, plus mixed combos.
    ComboEll<std::uint32_t, schemes::ElemNone<std::uint32_t>,
             schemes::StructNone<std::uint32_t>>,
    ComboEll<std::uint32_t, schemes::ElemSed<std::uint32_t>,
             schemes::StructSed<std::uint32_t>>,
    ComboEll<std::uint32_t, schemes::ElemSecded<std::uint32_t>,
             schemes::StructSecded<std::uint32_t>>,
    ComboEll<std::uint32_t, schemes::ElemSecded<std::uint32_t>,
             schemes::StructSecded128<std::uint32_t>>,
    ComboEll<std::uint32_t, schemes::ElemCrc32c<std::uint32_t>,
             schemes::StructCrc32c<std::uint32_t>>,
    ComboEll<std::uint32_t, schemes::ElemCrc32c<std::uint32_t>,
             schemes::StructSecded<std::uint32_t>>,
    ComboEll<std::uint32_t, schemes::ElemCrc32cTile<std::uint32_t>,
             schemes::StructCrc32c<std::uint32_t>>,
    // 64-bit width.
    ComboEll<std::uint64_t, schemes::ElemNone<std::uint64_t>,
             schemes::StructNone<std::uint64_t>>,
    ComboEll<std::uint64_t, schemes::ElemSed<std::uint64_t>,
             schemes::StructSed<std::uint64_t>>,
    ComboEll<std::uint64_t, schemes::ElemSecded<std::uint64_t>,
             schemes::StructSecded<std::uint64_t>>,
    ComboEll<std::uint64_t, schemes::ElemSecded<std::uint64_t>,
             schemes::StructSecded128<std::uint64_t>>,
    ComboEll<std::uint64_t, schemes::ElemCrc32c<std::uint64_t>,
             schemes::StructCrc32c<std::uint64_t>>,
    ComboEll<std::uint64_t, schemes::ElemCrc32cTile<std::uint64_t>,
             schemes::StructSecded<std::uint64_t>>,
    ComboEll<std::uint64_t, schemes::ElemSecded<std::uint64_t>,
             schemes::StructCrc32c<std::uint64_t>>>;
TYPED_TEST_SUITE(ProtectedEllTest, CombosEll);

template <class Index, class ES>
sparse::Ell<Index> ell_matrix(std::size_t nx = 11, std::size_t ny = 9) {
  const auto a32 = sparse::laplacian_2d(nx, ny);
  if constexpr (std::is_same_v<Index, std::uint32_t>) {
    return sparse::Ell<Index>::from_csr(a32, ES::kMinRowNnz);
  } else {
    return sparse::Ell<Index>::from_csr(sparse::Csr<Index>::from_csr(a32),
                                        ES::kMinRowNnz);
  }
}

TYPED_TEST(ProtectedEllTest, RoundTripPreservesMatrix) {
  scheme_matrix::container_round_trip<typename TypeParam::PM>(
      ell_matrix<typename TypeParam::Index, typename TypeParam::ES>());
}

TYPED_TEST(ProtectedEllTest, SingleValueFlipFollowsSchemeContract) {
  const auto a = ell_matrix<typename TypeParam::Index, typename TypeParam::ES>();
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    scheme_matrix::container_value_flips<typename TypeParam::PM>(a, seed);
  }
}

TYPED_TEST(ProtectedEllTest, SingleStructureFlipFollowsSchemeContract) {
  const auto a = ell_matrix<typename TypeParam::Index, typename TypeParam::ES>();
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    scheme_matrix::container_structure_flips<typename TypeParam::PM>(a, seed);
  }
}

TYPED_TEST(ProtectedEllTest, SpmvMatchesBaselineInBothModes) {
  using PM = typename TypeParam::PM;
  const auto a = ell_matrix<typename TypeParam::Index, typename TypeParam::ES>();
  auto p = PM::from_plain(a);
  Xoshiro256 rng(6);
  std::vector<double> x(a.ncols()), yref(a.nrows()), y(a.nrows());
  for (auto& v : x) v = rng.uniform(-2, 2);
  sparse::spmv(a, x.data(), yref.data());
  for (CheckMode mode : {CheckMode::full, CheckMode::bounds_only}) {
    p.spmv(x, y, mode);
    for (std::size_t i = 0; i < a.nrows(); ++i) EXPECT_EQ(y[i], yref[i]) << i;
  }
}

TYPED_TEST(ProtectedEllTest, RowAccessorsDecodeStructureAndElements) {
  using PM = typename TypeParam::PM;
  const auto a = ell_matrix<typename TypeParam::Index, typename TypeParam::ES>(5, 4);
  auto p = PM::from_plain(a);
  for (std::size_t r = 0; r < a.nrows(); ++r) {
    ASSERT_EQ(p.row_nnz_at(r), a.row_nnz()[r]) << r;
    for (std::size_t j = 0; j < a.row_nnz()[r]; ++j) {
      const auto el = p.element_in_row(r, j);
      EXPECT_EQ(el.value, a.values()[j * a.nrows() + r]);
      EXPECT_EQ(el.col, a.cols()[j * a.nrows() + r]);
    }
  }
}

// ---------------------------------------------------------------------------
// Fault response.
// ---------------------------------------------------------------------------

TEST(ProtectedEllFaults, BoundsGuardCatchesCorruptColumnInSkipMode) {
  using ES = schemes::ElemSed<std::uint32_t>;
  const auto a = ell_matrix<std::uint32_t, ES>();
  FaultLog log;
  auto p = ProtectedEll<std::uint32_t, ES, schemes::StructSed<std::uint32_t>>::from_ell(
      a, &log, DuePolicy::record_only);
  p.raw_cols()[7] = ES::kColMask;  // masked value still >= ncols
  std::vector<double> x(a.ncols(), 1.0), y(a.nrows());
  p.spmv(x, y, CheckMode::bounds_only);
  EXPECT_GE(log.bounds_violations(), 1u);
  EXPECT_EQ(log.uncorrectable(), 0u);
}

TEST(ProtectedEllFaults, BoundsGuardCatchesCorruptRowWidthInSkipMode) {
  using ES = schemes::ElemNone<std::uint32_t>;
  using SS = schemes::StructNone<std::uint32_t>;
  const auto a = ell_matrix<std::uint32_t, ES>();
  FaultLog log;
  auto p = ProtectedEll<std::uint32_t, ES, SS>::from_ell(a, &log, DuePolicy::record_only);
  p.raw_row_nnz()[3] = 1000;  // way beyond the slab width
  std::vector<double> x(a.ncols(), 1.0), y(a.nrows());
  p.spmv(x, y, CheckMode::bounds_only);
  EXPECT_GE(log.bounds_violations(), 1u);
  EXPECT_EQ(y[3], 0.0);  // the guarded row yields zero instead of a segfault
}

TEST(ProtectedEllFaults, CorruptRowWidthIsBoundsGuardedInRowAccessors) {
  // A width that survives corrupted beyond the slab width must read as an
  // empty row (logged bounds violation), not drive element_in_row past the
  // slabs; out-of-slab slots raise BoundsViolation for the recovery path.
  using ES = schemes::ElemNone<std::uint32_t>;
  using SS = schemes::StructNone<std::uint32_t>;
  const auto a = ell_matrix<std::uint32_t, ES>();
  FaultLog log;
  auto p = ProtectedEll<std::uint32_t, ES, SS>::from_ell(a, &log, DuePolicy::record_only);
  p.raw_row_nnz()[3] = 1000;  // way beyond the slab width
  EXPECT_EQ(p.row_nnz_at(3), 0u);
  EXPECT_GE(log.bounds_violations(), 1u);
  EXPECT_THROW((void)p.element_in_row(3, 999), BoundsViolation);
  // to_ell must emit a structurally valid matrix despite the corruption.
  EXPECT_NO_THROW(p.to_ell().validate());
}

TEST(ProtectedEllFaults, WidthLimitEnforcedForPerRowCrc) {
  // A slab narrower than the 4 checksum slots must be rejected with a hint.
  sparse::EllMatrix narrow(4, 4, 2);
  for (std::size_t r = 0; r < 4; ++r) {
    narrow.row_nnz()[r] = 1;
    narrow.values()[r] = 1.0;
    narrow.cols()[r] = static_cast<std::uint32_t>(r);
    narrow.cols()[4 + r] = static_cast<std::uint32_t>(r);
  }
  using PM = ProtectedEll<std::uint32_t, schemes::ElemCrc32c<std::uint32_t>,
                          schemes::StructNone<std::uint32_t>>;
  EXPECT_THROW((void)PM::from_ell(narrow), std::invalid_argument);
  // from_csr with min_width is the documented remedy.
  const auto fixed = sparse::EllMatrix::from_csr(narrow.to_csr(), 4);
  EXPECT_NO_THROW((void)PM::from_ell(fixed));
}

// ---------------------------------------------------------------------------
// Full dispatch matrix: protected ELL SpMV must run end-to-end under every
// applicable (width x element x structure x vector) combination and produce
// storage bit-identical to the CSR path on the same stencil matrix.
// ---------------------------------------------------------------------------

TEST(ProtectedEllDispatch, SpmvMatchesCsrAcrossFullSchemeMatrix) {
  const auto a32 = sparse::laplacian_2d(12, 10);
  Xoshiro256 rng(12);
  std::vector<double> x0(a32.ncols());
  for (auto& v : x0) v = rng.uniform(-2, 2);

  const auto run = [&](MatrixFormat fmt, IndexWidth width, const SchemeTriple& t) {
    return dispatch_protection(
        fmt, width, t,
        [&]<class Fmt, class Index, class ES, class SS, class VS>() {
          using PM = typename Fmt::template protected_matrix<Index, ES, SS>;
          const auto a = Fmt::template make_plain<Index, ES>(a32);
          auto pa = PM::from_plain(a);
          ProtectedVector<VS> x(a.ncols()), y(a.nrows());
          x.assign({x0.data(), x0.size()});
          spmv(pa, x, y);
          return std::vector<double>(y.raw().begin(), y.raw().end());
        });
  };

  for (auto width : {IndexWidth::i32, IndexWidth::i64}) {
    for (auto es : ecc::kAllSchemes) {
      if (width == IndexWidth::i32 && es == ecc::Scheme::secded128) continue;
      for (auto ss : ecc::kAllSchemes) {
        for (auto vs : ecc::kAllSchemes) {
          const SchemeTriple t(es, ss, vs);
          // crc32c-tile has no CSR layout; the per-row CRC is the CSR
          // reference (the decoded operator — and therefore y — is
          // identical, only the codeword layout differs).
          const SchemeTriple t_csr(
              es == ecc::Scheme::crc32c_tile ? ecc::Scheme::crc32c : es, ss, vs);
          const auto y_csr = run(MatrixFormat::csr, width, t_csr);
          const auto y_ell = run(MatrixFormat::ell, width, t);
          ASSERT_EQ(y_csr.size(), y_ell.size());
          for (std::size_t i = 0; i < y_csr.size(); ++i) {
            // Same row sums, same vector encoding: the protected storage of
            // y must agree bit for bit between the two formats.
            ASSERT_EQ(y_csr[i], y_ell[i])
                << "width=" << to_string(width) << " es=" << ecc::to_string(es)
                << " ss=" << ecc::to_string(ss) << " vs=" << ecc::to_string(vs)
                << " i=" << i;
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Solvers over the ELL stack.
// ---------------------------------------------------------------------------

template <class ES, class SS, class VS>
std::pair<sparse::EllMatrix, aligned_vector<double>> ones_problem_ell(std::size_t nx,
                                                                      std::size_t ny) {
  auto a = sparse::EllMatrix::from_csr(sparse::laplacian_2d(nx, ny), ES::kMinRowNnz);
  aligned_vector<double> ones(a.nrows(), 1.0), rhs(a.nrows(), 0.0);
  sparse::spmv(a, ones.data(), rhs.data());
  return {std::move(a), std::move(rhs)};
}

TEST(ProtectedEllSolve, CgConvergesAndRepairsInjectedFlips) {
  using ES = schemes::ElemSecded<std::uint32_t>;
  using SS = schemes::StructSecded<std::uint32_t>;
  const auto [a, rhs] = ones_problem_ell<ES, SS, VecSecded64>(24, 24);
  const std::size_t n = a.nrows();

  FaultLog log;
  auto pa = ProtectedEll<std::uint32_t, ES, SS>::from_ell(a, &log, DuePolicy::record_only);
  ProtectedVector<VecSecded64> b(n, &log, DuePolicy::record_only);
  ProtectedVector<VecSecded64> u(n, &log, DuePolicy::record_only);
  b.assign({rhs.data(), n});

  faults::Injector injector(11);
  auto vals = pa.raw_values();
  injector.inject_single(
      {reinterpret_cast<std::uint8_t*>(vals.data()), vals.size_bytes()});
  auto widths = pa.raw_row_nnz();
  injector.inject_single(
      {reinterpret_cast<std::uint8_t*>(widths.data()), widths.size_bytes()});

  solvers::SolveOptions opts;
  opts.tolerance = 1e-11;
  const auto res = solvers::cg_solve(pa, b, u, opts);
  EXPECT_TRUE(res.converged);
  EXPECT_GE(log.corrected(), 1u);
  EXPECT_EQ(log.uncorrectable(), 0u);

  std::vector<double> got(n, 0.0);
  u.extract({got.data(), n});
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(got[i], 1.0, 1e-7);
}

TEST(ProtectedEllSolve, PcgAndJacobiRunOnEll) {
  using ES = schemes::ElemSed<std::uint32_t>;
  using SS = schemes::StructSed<std::uint32_t>;
  const auto [a, rhs] = ones_problem_ell<ES, SS, VecSed>(12, 12);
  const std::size_t n = a.nrows();
  auto pa = ProtectedEll<std::uint32_t, ES, SS>::from_ell(a);
  ProtectedVector<VecSed> b(n), u(n);
  b.assign({rhs.data(), n});

  solvers::SolveOptions opts;
  opts.tolerance = 1e-9;
  const auto pcg = solvers::pcg_jacobi_solve(pa, b, u, opts);
  EXPECT_TRUE(pcg.converged);

  ProtectedVector<VecSed> u2(n);
  opts.max_iterations = 20000;
  const auto jac = solvers::jacobi_solve(pa, b, u2, opts);
  EXPECT_TRUE(jac.converged);
}

TEST(ProtectedEllSolve, GenericRestartRecoversFromDueOnEll) {
  // SED detects but cannot correct -> DUE -> solve_with_restart re-encodes
  // from the pristine ELL checkpoint and retries; the generic wrapper also
  // exercises a non-CG solver (chebyshev).
  using ES = schemes::ElemSed<std::uint32_t>;
  using SS = schemes::StructSed<std::uint32_t>;
  using Matrix = ProtectedEll<std::uint32_t, ES, SS>;
  const auto [a, rhs] = ones_problem_ell<ES, SS, VecSed>(16, 16);
  const std::size_t n = a.nrows();
  FaultLog log;
  auto pa = Matrix::from_ell(a, &log);
  ProtectedVector<VecSed> b(n, &log), u(n, &log);
  b.assign({rhs.data(), n});

  auto values = pa.raw_values();
  faults::flip_bit({reinterpret_cast<std::uint8_t*>(values.data()), values.size_bytes()},
                   512);
  solvers::SolveOptions opts;
  opts.tolerance = 1e-10;
  opts.max_iterations = 4000;
  const auto res = solvers::solve_with_restart(
      [&opts](Matrix& m, ProtectedVector<VecSed>& bb, ProtectedVector<VecSed>& uu) {
        return solvers::chebyshev_solve(m, bb, uu, opts);
      },
      a, pa, b, u);
  EXPECT_FALSE(res.gave_up);
  EXPECT_EQ(res.restarts, 1u);
  EXPECT_TRUE(res.solve.converged);

  aligned_vector<double> got(n);
  u.extract(got);
  for (double g : got) EXPECT_NEAR(g, 1.0, 1e-5);
}

}  // namespace
