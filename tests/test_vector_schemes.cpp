// Dense-vector protection schemes (paper §VI-B, Fig. 3): round-trip,
// masking semantics, and flip detection/correction per scheme, swept with
// parameterized and typed tests.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>

#include "abft/vector_schemes.hpp"
#include "common/bits.hpp"
#include "common/rng.hpp"

namespace {

using namespace abft;

template <class S>
class VectorSchemeTest : public ::testing::Test {};

using AllSchemes = ::testing::Types<VecNone, VecSed, VecSecded64, VecSecded128, VecCrc32c>;
TYPED_TEST_SUITE(VectorSchemeTest, AllSchemes);

template <class S>
void fill_random(double (&vals)[S::kGroup], Xoshiro256& rng) {
  for (auto& v : vals) v = rng.uniform(-1e6, 1e6);
}

TYPED_TEST(VectorSchemeTest, RoundTripPreservesMaskedValues) {
  using S = TypeParam;
  Xoshiro256 rng(1);
  for (int rep = 0; rep < 100; ++rep) {
    double vals[S::kGroup];
    fill_random<S>(vals, rng);
    double storage[S::kGroup];
    S::encode_group(vals, storage);
    double decoded[S::kGroup];
    EXPECT_EQ(S::decode_group(storage, decoded), CheckOutcome::ok);
    for (std::size_t e = 0; e < S::kGroup; ++e) {
      EXPECT_EQ(decoded[e], S::mask(vals[e]));
    }
  }
}

TYPED_TEST(VectorSchemeTest, MaskingErrorIsBounded) {
  using S = TypeParam;
  // Masking the low mantissa bits perturbs a value by at most
  // 2^-(52 - bits) relative — the "noise" the paper bounds (§VI-B).
  Xoshiro256 rng(2);
  const double rel_bound = std::ldexp(1.0, static_cast<int>(S::kRedundancyBitsPerElement) - 52);
  for (int rep = 0; rep < 1000; ++rep) {
    const double v = rng.uniform(-1e9, 1e9);
    const double m = S::mask(v);
    EXPECT_LE(std::abs(m - v), std::abs(v) * rel_bound + 1e-300) << v;
  }
}

TYPED_TEST(VectorSchemeTest, MaskIsIdempotent) {
  using S = TypeParam;
  Xoshiro256 rng(3);
  for (int rep = 0; rep < 100; ++rep) {
    const double v = rng.uniform(-1e3, 1e3);
    EXPECT_EQ(S::mask(S::mask(v)), S::mask(v));
  }
}

TYPED_TEST(VectorSchemeTest, EncodedGroupSurvivesDecodeEncodeCycle) {
  using S = TypeParam;
  Xoshiro256 rng(4);
  double vals[S::kGroup];
  fill_random<S>(vals, rng);
  double storage[S::kGroup];
  S::encode_group(vals, storage);
  double decoded[S::kGroup];
  ASSERT_EQ(S::decode_group(storage, decoded), CheckOutcome::ok);
  double storage2[S::kGroup];
  S::encode_group(decoded, storage2);
  for (std::size_t e = 0; e < S::kGroup; ++e) {
    EXPECT_EQ(double_to_bits(storage[e]), double_to_bits(storage2[e]));
  }
}

TYPED_TEST(VectorSchemeTest, HandlesSpecialValues) {
  using S = TypeParam;
  const double specials[] = {0.0, -0.0, 1.0, -1.0,
                             std::numeric_limits<double>::max(),
                             std::numeric_limits<double>::min(),
                             std::numeric_limits<double>::denorm_min()};
  for (double v : specials) {
    double vals[S::kGroup];
    for (auto& x : vals) x = v;
    double storage[S::kGroup];
    S::encode_group(vals, storage);
    double decoded[S::kGroup];
    EXPECT_EQ(S::decode_group(storage, decoded), CheckOutcome::ok) << v;
    for (std::size_t e = 0; e < S::kGroup; ++e) EXPECT_EQ(decoded[e], S::mask(v));
  }
}

// ---------------------------------------------------------------------------
// Detection / correction properties per scheme.
// ---------------------------------------------------------------------------

/// Flip bit `bit` of element `e` in a raw double array.
template <std::size_t N>
void flip(double (&storage)[N], std::size_t e, unsigned bit) {
  storage[e] = bits_to_double(flip_bit(double_to_bits(storage[e]), bit));
}

class VecSedFlips : public ::testing::TestWithParam<unsigned> {};

TEST_P(VecSedFlips, EverySingleFlipIsDetected) {
  Xoshiro256 rng(5);
  const unsigned bit = GetParam();
  double vals[1] = {rng.uniform(-10, 10)};
  double storage[1];
  VecSed::encode_group(vals, storage);
  flip(storage, 0, bit);
  double decoded[1];
  EXPECT_EQ(VecSed::decode_group(storage, decoded), CheckOutcome::uncorrectable);
}

INSTANTIATE_TEST_SUITE_P(AllBits, VecSedFlips, ::testing::Range(0u, 64u));

TEST(VecSedProperties, DoubleFlipsAreMissed) {
  // HD=2: even-weight errors are invisible — the scheme's documented limit.
  Xoshiro256 rng(6);
  double vals[1] = {rng.uniform(-10, 10)};
  double storage[1];
  VecSed::encode_group(vals, storage);
  flip(storage, 0, 7);
  flip(storage, 0, 42);
  double decoded[1];
  EXPECT_EQ(VecSed::decode_group(storage, decoded), CheckOutcome::ok);
}

class VecSecded64Flips : public ::testing::TestWithParam<unsigned> {};

TEST_P(VecSecded64Flips, EverySingleFlipIsCorrected) {
  Xoshiro256 rng(7);
  const unsigned bit = GetParam();
  double vals[1] = {rng.uniform(-10, 10)};
  double storage[1];
  VecSecded64::encode_group(vals, storage);
  const std::uint64_t clean = double_to_bits(storage[0]);
  flip(storage, 0, bit);
  double decoded[1];
  const auto outcome = VecSecded64::decode_group(storage, decoded);
  if (bit == 7) {
    // Bit 7 of the low byte is the unused redundancy slot: flips there are
    // outside the codeword, invisible by design and masked on read.
    EXPECT_EQ(outcome, CheckOutcome::ok);
  } else {
    EXPECT_EQ(outcome, CheckOutcome::corrected) << "bit " << bit;
    EXPECT_EQ(double_to_bits(storage[0]), clean) << "write-back at bit " << bit;
  }
  EXPECT_EQ(decoded[0], VecSecded64::mask(vals[0]));
}

INSTANTIATE_TEST_SUITE_P(AllBits, VecSecded64Flips, ::testing::Range(0u, 64u));

TEST(VecSecded64Properties, DoubleFlipInDataIsDetected) {
  Xoshiro256 rng(8);
  for (unsigned i = 8; i < 64; i += 5) {
    for (unsigned j = i + 1; j < 64; j += 9) {
      double vals[1] = {rng.uniform(-10, 10)};
      double storage[1];
      VecSecded64::encode_group(vals, storage);
      flip(storage, 0, i);
      flip(storage, 0, j);
      double decoded[1];
      EXPECT_EQ(VecSecded64::decode_group(storage, decoded), CheckOutcome::uncorrectable)
          << i << "," << j;
    }
  }
}

class VecSecded128Flips : public ::testing::TestWithParam<std::tuple<int, unsigned>> {};

TEST_P(VecSecded128Flips, EverySingleFlipIsCorrectedOrDeadBit) {
  const auto [elem, bit] = GetParam();
  Xoshiro256 rng(9);
  double vals[2] = {rng.uniform(-10, 10), rng.uniform(-10, 10)};
  double storage[2];
  VecSecded128::encode_group(vals, storage);
  const std::uint64_t clean0 = double_to_bits(storage[0]);
  const std::uint64_t clean1 = double_to_bits(storage[1]);
  flip(storage, static_cast<std::size_t>(elem), bit);
  double decoded[2];
  const auto outcome = VecSecded128::decode_group(storage, decoded);
  // Redundancy layout: 5 LSBs of element 0 hold red bits 0..4, 5 LSBs of
  // element 1 hold red bits 5..7 plus two unused slots (bits 3, 4).
  const bool dead = elem == 1 && (bit == 3 || bit == 4);
  if (dead) {
    EXPECT_EQ(outcome, CheckOutcome::ok);
  } else {
    EXPECT_EQ(outcome, CheckOutcome::corrected) << "elem " << elem << " bit " << bit;
    EXPECT_EQ(double_to_bits(storage[0]), clean0);
    EXPECT_EQ(double_to_bits(storage[1]), clean1);
  }
  EXPECT_EQ(decoded[0], VecSecded128::mask(vals[0]));
  EXPECT_EQ(decoded[1], VecSecded128::mask(vals[1]));
}

INSTANTIATE_TEST_SUITE_P(AllBits, VecSecded128Flips,
                         ::testing::Combine(::testing::Values(0, 1),
                                            ::testing::Range(0u, 64u)));

class VecCrc32cFlips : public ::testing::TestWithParam<std::tuple<int, unsigned>> {};

TEST_P(VecCrc32cFlips, EverySingleFlipIsCorrected) {
  const auto [elem, bit] = GetParam();
  Xoshiro256 rng(10);
  double vals[4];
  for (auto& v : vals) v = rng.uniform(-10, 10);
  double storage[4];
  VecCrc32c::encode_group(vals, storage);
  std::uint64_t clean[4];
  for (int e = 0; e < 4; ++e) clean[e] = double_to_bits(storage[e]);
  flip(storage, static_cast<std::size_t>(elem), bit);
  double decoded[4];
  const auto outcome = VecCrc32c::decode_group(storage, decoded);
  EXPECT_EQ(outcome, CheckOutcome::corrected) << "elem " << elem << " bit " << bit;
  for (int e = 0; e < 4; ++e) {
    EXPECT_EQ(double_to_bits(storage[e]), clean[e]) << "write-back elem " << e;
    EXPECT_EQ(decoded[e], VecCrc32c::mask(vals[e]));
  }
}

INSTANTIATE_TEST_SUITE_P(SampledBits, VecCrc32cFlips,
                         ::testing::Combine(::testing::Values(0, 1, 2, 3),
                                            ::testing::Values(0u, 3u, 8u, 21u, 40u,
                                                              52u, 63u)));

TEST(VecCrc32cProperties, FiveFlipsAreAlwaysAtLeastDetected) {
  // HD=6 in this codeword size: up to 5 flips can never decode to "ok".
  Xoshiro256 rng(11);
  for (int rep = 0; rep < 200; ++rep) {
    double vals[4];
    for (auto& v : vals) v = rng.uniform(-10, 10);
    double storage[4];
    VecCrc32c::encode_group(vals, storage);
    for (int f = 0; f < 5; ++f) {
      flip(storage, rng.below(4), static_cast<unsigned>(rng.below(64)));
    }
    double decoded[4];
    const auto outcome = VecCrc32c::decode_group(storage, decoded);
    EXPECT_NE(outcome, CheckOutcome::ok) << "rep " << rep;
  }
}

TEST(VecCrc32cProperties, BurstWithinGroupIsDetected) {
  Xoshiro256 rng(12);
  double vals[4];
  for (auto& v : vals) v = rng.uniform(-10, 10);
  double storage[4];
  VecCrc32c::encode_group(vals, storage);
  // Flip a 20-bit burst spanning elements 1 and 2.
  for (unsigned b = 54; b < 64; ++b) flip(storage, 1, b);
  for (unsigned b = 0; b < 10; ++b) flip(storage, 2, b);
  double decoded[4];
  EXPECT_NE(VecCrc32c::decode_group(storage, decoded), CheckOutcome::ok);
}

}  // namespace
