// SED (parity) primitive tests (paper §IV: detects all odd-weight errors,
// misses all even-weight errors, corrects nothing).
#include <gtest/gtest.h>

#include <cstdint>

#include "common/bits.hpp"
#include "common/rng.hpp"
#include "ecc/parity.hpp"

namespace {

using namespace abft;
using namespace abft::ecc;

TEST(Parity, Parity64Basics) {
  EXPECT_EQ(parity64(0), 0u);
  EXPECT_EQ(parity64(1), 1u);
  EXPECT_EQ(parity64(0b11), 0u);
  EXPECT_EQ(parity64(~std::uint64_t{0}), 0u);
  EXPECT_EQ(parity64(std::uint64_t{1} << 63), 1u);
}

TEST(Parity, SingleFlipAlwaysChangesParity64) {
  Xoshiro256 rng(21);
  for (int rep = 0; rep < 20; ++rep) {
    const std::uint64_t x = rng();
    for (unsigned bit = 0; bit < 64; ++bit) {
      EXPECT_NE(parity64(x), parity64(flip_bit(x, bit)));
    }
  }
}

TEST(Parity, EvenFlipsPreserveParity64) {
  Xoshiro256 rng(22);
  for (int rep = 0; rep < 200; ++rep) {
    const std::uint64_t x = rng();
    const unsigned i = static_cast<unsigned>(rng.below(64));
    unsigned j = static_cast<unsigned>(rng.below(64));
    while (j == i) j = static_cast<unsigned>(rng.below(64));
    EXPECT_EQ(parity64(x), parity64(flip_bit(flip_bit(x, i), j)));
  }
}

TEST(Parity, SedElementCoversValueAndDataColumnBits32) {
  // 96-bit element codeword: 64 value bits + low 31 column bits (Fig. 1a).
  Xoshiro256 rng(23);
  for (int rep = 0; rep < 50; ++rep) {
    const std::uint64_t v = rng();
    const std::uint32_t c = static_cast<std::uint32_t>(rng()) & 0x7FFFFFFFu;
    const std::uint32_t p = sed_parity_element(v, c);

    // Flipping any value bit must change the parity.
    for (unsigned bit = 0; bit < 64; bit += 5) {
      EXPECT_NE(sed_parity_element(flip_bit(v, bit), c), p);
    }
    // Flipping any of the low 31 column bits must change it.
    for (unsigned bit = 0; bit < 31; bit += 3) {
      EXPECT_NE(sed_parity_element(v, c ^ (1u << bit)), p);
    }
    // Bit 31 (the parity's own storage slot) is excluded from the codeword.
    EXPECT_EQ(sed_parity_element(v, c | 0x80000000u), p);
  }
}

TEST(Parity, SedElementCoversValueAndDataColumnBits64) {
  // 128-bit element codeword: 64 value bits + low 63 column bits (§V-B).
  Xoshiro256 rng(25);
  const std::uint64_t v = rng();
  const std::uint64_t c = rng() >> 1;
  const std::uint32_t p = sed_parity_element(v, c);
  for (unsigned bit = 0; bit < 63; bit += 7) {
    EXPECT_NE(sed_parity_element(v, c ^ (std::uint64_t{1} << bit)), p);
  }
  // Bit 63 (the parity's own storage slot) is excluded from the codeword.
  EXPECT_EQ(sed_parity_element(v, c | (std::uint64_t{1} << 63)), p);
}

TEST(Parity, SedEntryExcludesTopBit) {
  EXPECT_EQ(sed_parity_entry<std::uint32_t>(0), 0u);
  EXPECT_EQ(sed_parity_entry<std::uint32_t>(1), 1u);
  EXPECT_EQ(sed_parity_entry<std::uint32_t>(0x80000000u), 0u);  // parity slot
  EXPECT_EQ(sed_parity_entry<std::uint32_t>(0x80000001u), 1u);
  EXPECT_EQ(sed_parity_entry<std::uint64_t>(std::uint64_t{1} << 63), 0u);
  EXPECT_EQ(sed_parity_entry<std::uint64_t>((std::uint64_t{1} << 63) | 1u), 1u);
}

TEST(Parity, SedDoubleExcludesMantissaLsb) {
  Xoshiro256 rng(24);
  for (int rep = 0; rep < 50; ++rep) {
    const std::uint64_t b = rng();
    EXPECT_EQ(sed_parity_double(b), sed_parity_double(b ^ 1u))
        << "parity must ignore the storage bit";
    for (unsigned bit = 1; bit < 64; bit += 7) {
      EXPECT_NE(sed_parity_double(b), sed_parity_double(flip_bit(b, bit)));
    }
  }
}

}  // namespace
