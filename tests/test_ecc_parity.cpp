// SED (parity) primitive tests (paper §IV: detects all odd-weight errors,
// misses all even-weight errors, corrects nothing).
#include <gtest/gtest.h>

#include <cstdint>

#include "common/bits.hpp"
#include "common/rng.hpp"
#include "ecc/parity.hpp"

namespace {

using namespace abft;
using namespace abft::ecc;

TEST(Parity, Parity64Basics) {
  EXPECT_EQ(parity64(0), 0u);
  EXPECT_EQ(parity64(1), 1u);
  EXPECT_EQ(parity64(0b11), 0u);
  EXPECT_EQ(parity64(~std::uint64_t{0}), 0u);
  EXPECT_EQ(parity64(std::uint64_t{1} << 63), 1u);
}

TEST(Parity, SingleFlipAlwaysChangesParity64) {
  Xoshiro256 rng(21);
  for (int rep = 0; rep < 20; ++rep) {
    const std::uint64_t x = rng();
    for (unsigned bit = 0; bit < 64; ++bit) {
      EXPECT_NE(parity64(x), parity64(flip_bit(x, bit)));
    }
  }
}

TEST(Parity, EvenFlipsPreserveParity64) {
  Xoshiro256 rng(22);
  for (int rep = 0; rep < 200; ++rep) {
    const std::uint64_t x = rng();
    const unsigned i = static_cast<unsigned>(rng.below(64));
    unsigned j = static_cast<unsigned>(rng.below(64));
    while (j == i) j = static_cast<unsigned>(rng.below(64));
    EXPECT_EQ(parity64(x), parity64(flip_bit(flip_bit(x, i), j)));
  }
}

TEST(Parity, Sed96CoversValueAndLow31ColumnBits) {
  Xoshiro256 rng(23);
  for (int rep = 0; rep < 50; ++rep) {
    const std::uint64_t v = rng();
    const std::uint32_t c = static_cast<std::uint32_t>(rng()) & 0x7FFFFFFFu;
    const std::uint32_t p = sed_parity96(v, c);

    // Flipping any value bit must change the parity.
    for (unsigned bit = 0; bit < 64; bit += 5) {
      EXPECT_NE(sed_parity96(flip_bit(v, bit), c), p);
    }
    // Flipping any of the low 31 column bits must change it.
    for (unsigned bit = 0; bit < 31; bit += 3) {
      EXPECT_NE(sed_parity96(v, c ^ (1u << bit)), p);
    }
    // Bit 31 (the parity's own storage slot) is excluded from the codeword.
    EXPECT_EQ(sed_parity96(v, c | 0x80000000u), p);
  }
}

TEST(Parity, SedU32ExcludesTopBit) {
  EXPECT_EQ(sed_parity_u32(0), 0u);
  EXPECT_EQ(sed_parity_u32(1), 1u);
  EXPECT_EQ(sed_parity_u32(0x80000000u), 0u);  // top bit not part of the data
  EXPECT_EQ(sed_parity_u32(0x80000001u), 1u);
}

TEST(Parity, SedDoubleExcludesMantissaLsb) {
  Xoshiro256 rng(24);
  for (int rep = 0; rep < 50; ++rep) {
    const std::uint64_t b = rng();
    EXPECT_EQ(sed_parity_double(b), sed_parity_double(b ^ 1u))
        << "parity must ignore the storage bit";
    for (unsigned bit = 1; bit < 64; bit += 7) {
      EXPECT_NE(sed_parity_double(b), sed_parity_double(flip_bit(b, bit)));
    }
  }
}

}  // namespace
