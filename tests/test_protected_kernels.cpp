// Protected kernels vs raw reference kernels: SpMV across all scheme
// combinations and check modes, BLAS-1 ops across vector schemes, and error
// propagation out of the OpenMP regions (paper §VI-C).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "abft/abft.hpp"
#include "common/rng.hpp"
#include "faults/injector.hpp"
#include "sparse/generators.hpp"
#include "sparse/transform.hpp"
#include "sparse/vector_ops.hpp"

namespace {

using namespace abft;

constexpr double kTol = 1e-12;

/// Masking the mantissa LSBs perturbs values; reference comparisons must
/// allow the scheme's relative noise bound (paper §VI-B).
template <class VS>
double noise_bound(double magnitude, std::size_t terms) {
  const double rel = std::ldexp(1.0, static_cast<int>(VS::kRedundancyBitsPerElement) - 52);
  return magnitude * rel * static_cast<double>(terms) * 4.0 + kTol;
}

template <class Combo>
class SpmvTest : public ::testing::Test {};

template <class E, class R, class V>
struct Combo {
  using ES = E;
  using RS = R;
  using VS = V;
};

using SpmvCombos = ::testing::Types<
    Combo<ElemNone, RowNone, VecNone>, Combo<ElemSed, RowSed, VecSed>,
    Combo<ElemSecded, RowSecded64, VecSecded64>,
    Combo<ElemSecded, RowSecded128, VecSecded128>,
    Combo<ElemCrc32c, RowCrc32c, VecCrc32c>, Combo<ElemSed, RowNone, VecNone>,
    Combo<ElemNone, RowSecded64, VecNone>, Combo<ElemNone, RowNone, VecCrc32c>,
    Combo<ElemCrc32c, RowSed, VecSecded64>>;
TYPED_TEST_SUITE(SpmvTest, SpmvCombos);

TYPED_TEST(SpmvTest, MatchesRawSpmvOnLaplacian) {
  using ES = typename TypeParam::ES;
  using RS = typename TypeParam::RS;
  using VS = typename TypeParam::VS;

  auto a = sparse::laplacian_2d(13, 11);
  if constexpr (ES::kMinRowNnz > 1) a = sparse::pad_rows_to_min_nnz(a, ES::kMinRowNnz);
  const std::size_t n = a.nrows();

  Xoshiro256 rng(1);
  std::vector<double> xraw(n);
  for (auto& v : xraw) v = VS::mask(rng.uniform(-3, 3));
  std::vector<double> yref(n, 0.0);
  sparse::spmv(a, xraw.data(), yref.data());

  auto pa = ProtectedCsr<std::uint32_t, ES, RS>::from_csr(a);
  ProtectedVector<VS> x(n), y(n);
  x.assign({xraw.data(), n});

  for (CheckMode mode : {CheckMode::full, CheckMode::bounds_only}) {
    spmv(pa, x, y, mode);
    std::vector<double> got(n, 0.0);
    y.extract(got);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(got[i], yref[i], noise_bound<VS>(20.0, 5)) << i;
    }
  }
}

TYPED_TEST(SpmvTest, MatchesRawSpmvOnRandomSpd) {
  using ES = typename TypeParam::ES;
  using RS = typename TypeParam::RS;
  using VS = typename TypeParam::VS;

  auto a = sparse::random_spd(150, 6, 99);
  if constexpr (ES::kMinRowNnz > 1) a = sparse::pad_rows_to_min_nnz(a, ES::kMinRowNnz);
  const std::size_t n = a.nrows();

  Xoshiro256 rng(2);
  std::vector<double> xraw(n);
  for (auto& v : xraw) v = VS::mask(rng.uniform(-1, 1));
  std::vector<double> yref(n, 0.0);
  sparse::spmv(a, xraw.data(), yref.data());

  auto pa = ProtectedCsr<std::uint32_t, ES, RS>::from_csr(a);
  ProtectedVector<VS> x(n), y(n);
  x.assign({xraw.data(), n});
  spmv(pa, x, y);
  std::vector<double> got(n, 0.0);
  y.extract(got);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(got[i], yref[i], noise_bound<VS>(10.0, 16)) << i;
  }
}

// ---------------------------------------------------------------------------
// BLAS-1 kernels across vector schemes.
// ---------------------------------------------------------------------------

template <class VS>
class Blas1Test : public ::testing::Test {};

using VecSchemes = ::testing::Types<VecNone, VecSed, VecSecded64, VecSecded128, VecCrc32c>;
TYPED_TEST_SUITE(Blas1Test, VecSchemes);

template <class VS>
struct Fixture {
  std::size_t n;
  std::vector<double> araw, braw;
  ProtectedVector<VS> a, b;

  explicit Fixture(std::size_t size, std::uint64_t seed) : n(size), a(size), b(size) {
    Xoshiro256 rng(seed);
    araw.resize(n);
    braw.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      araw[i] = VS::mask(rng.uniform(-5, 5));
      braw[i] = VS::mask(rng.uniform(-5, 5));
    }
    a.assign({araw.data(), n});
    b.assign({braw.data(), n});
  }
};

TYPED_TEST(Blas1Test, DotMatchesReference) {
  for (std::size_t n : {1u, 5u, 64u, 257u}) {
    Fixture<TypeParam> f(n, n);
    const double expected = sparse::dot(f.araw.data(), f.braw.data(), n);
    EXPECT_NEAR(dot(f.a, f.b), expected, noise_bound<TypeParam>(25.0 * n, n));
  }
}

TYPED_TEST(Blas1Test, AxpyMatchesReference) {
  Fixture<TypeParam> f(130, 3);
  sparse::axpy(2.5, f.araw.data(), f.braw.data(), f.n);
  axpy(2.5, f.a, f.b);
  std::vector<double> got(f.n);
  f.b.extract(got);
  for (std::size_t i = 0; i < f.n; ++i) {
    EXPECT_NEAR(got[i], f.braw[i], noise_bound<TypeParam>(20.0, 2)) << i;
  }
}

TYPED_TEST(Blas1Test, XpbyMatchesReference) {
  Fixture<TypeParam> f(97, 4);
  sparse::xpby(f.araw.data(), -0.75, f.braw.data(), f.n);
  xpby(f.a, -0.75, f.b);
  std::vector<double> got(f.n);
  f.b.extract(got);
  for (std::size_t i = 0; i < f.n; ++i) {
    EXPECT_NEAR(got[i], f.braw[i], noise_bound<TypeParam>(10.0, 2)) << i;
  }
}

TYPED_TEST(Blas1Test, AxpbyMatchesReference) {
  Fixture<TypeParam> f(97, 5);
  for (std::size_t i = 0; i < f.n; ++i) f.braw[i] = 1.5 * f.araw[i] - 2.0 * f.braw[i];
  axpby(1.5, f.a, -2.0, f.b);
  std::vector<double> got(f.n);
  f.b.extract(got);
  for (std::size_t i = 0; i < f.n; ++i) {
    EXPECT_NEAR(got[i], f.braw[i], noise_bound<TypeParam>(20.0, 3)) << i;
  }
}

TYPED_TEST(Blas1Test, SubMatchesReference) {
  Fixture<TypeParam> f(64, 6);
  ProtectedVector<TypeParam> r(f.n);
  sub(f.a, f.b, r);
  std::vector<double> got(f.n);
  r.extract(got);
  for (std::size_t i = 0; i < f.n; ++i) {
    EXPECT_NEAR(got[i], f.araw[i] - f.braw[i], noise_bound<TypeParam>(10.0, 2)) << i;
  }
}

TYPED_TEST(Blas1Test, PointwiseFmaMatchesReference) {
  Fixture<TypeParam> f(50, 7);
  ProtectedVector<TypeParam> y(f.n);
  fill(y, 1.0);
  pointwise_fma(f.a, f.b, y);
  std::vector<double> got(f.n);
  y.extract(got);
  for (std::size_t i = 0; i < f.n; ++i) {
    const double expected = TypeParam::mask(1.0) + f.araw[i] * f.braw[i];
    EXPECT_NEAR(got[i], expected, noise_bound<TypeParam>(30.0, 3)) << i;
  }
}

TYPED_TEST(Blas1Test, CopyAndFill) {
  Fixture<TypeParam> f(41, 8);
  ProtectedVector<TypeParam> dst(f.n);
  copy(f.a, dst);
  std::vector<double> got(f.n);
  dst.extract(got);
  for (std::size_t i = 0; i < f.n; ++i) EXPECT_EQ(got[i], f.araw[i]);

  fill(dst, 3.5);
  dst.extract(got);
  for (std::size_t i = 0; i < f.n; ++i) EXPECT_EQ(got[i], TypeParam::mask(3.5));
  // Padding must stay zero so dot products over padded groups are exact.
  EXPECT_EQ(dst.verify_all(), 0u);
  EXPECT_NEAR(dot(dst, dst),
              f.n * TypeParam::mask(3.5) * TypeParam::mask(3.5), 1e-9);
}

TYPED_TEST(Blas1Test, NormMatchesReference) {
  Fixture<TypeParam> f(123, 9);
  const double expected = sparse::norm2(f.araw.data(), f.n);
  EXPECT_NEAR(norm2(f.a), expected, noise_bound<TypeParam>(expected, f.n));
}

// ---------------------------------------------------------------------------
// Per-operand fault attribution (regression: the BLAS-1 kernels used to fold
// every operand's decode outcomes into one capture committed to a single
// container — corruption detected in `b` was logged under `a` and policed by
// `a`'s DuePolicy).
// ---------------------------------------------------------------------------

/// Flip one storage bit of \p v (inside the first element's value bits, so
/// every scheme with any redundancy sees it).
template <class VS>
void corrupt_vector(ProtectedVector<VS>& v, std::size_t bit = 13) {
  auto raw = v.raw();
  faults::flip_bit({reinterpret_cast<std::uint8_t*>(raw.data()), raw.size_bytes()}, bit);
}

TEST(KernelFaultAttribution, DotLogsCorruptionInTheOperandThatCarriesIt) {
  const std::size_t n = 40;
  FaultLog log_a, log_b;
  ProtectedVector<VecSed> a(n, &log_a, DuePolicy::record_only);
  ProtectedVector<VecSed> b(n, &log_b, DuePolicy::record_only);
  fill(a, 1.0);
  fill(b, 2.0);
  corrupt_vector(b);
  (void)dot(a, b);
  // The fault lives in b; a's log must stay clean — and both logs account
  // their own decodes.
  EXPECT_EQ(log_a.uncorrectable(), 0u);
  EXPECT_GE(log_b.uncorrectable(), 1u);
  EXPECT_GE(log_a.checks(), n);
  EXPECT_GE(log_b.checks(), n);
}

TEST(KernelFaultAttribution, AxpyAndSubAndFmaAttributePerOperand) {
  const std::size_t n = 33;
  {
    FaultLog log_x, log_y;
    ProtectedVector<VecSed> x(n, &log_x, DuePolicy::record_only);
    ProtectedVector<VecSed> y(n, &log_y, DuePolicy::record_only);
    fill(x, 1.0);
    fill(y, 2.0);
    corrupt_vector(x);
    axpy(0.5, x, y);
    EXPECT_GE(log_x.uncorrectable(), 1u);
    EXPECT_EQ(log_y.uncorrectable(), 0u);
  }
  {
    FaultLog log_a, log_b, log_r;
    ProtectedVector<VecSed> a(n, &log_a, DuePolicy::record_only);
    ProtectedVector<VecSed> b(n, &log_b, DuePolicy::record_only);
    ProtectedVector<VecSed> r(n, &log_r, DuePolicy::record_only);
    fill(a, 1.0);
    fill(b, 2.0);
    corrupt_vector(b);
    sub(a, b, r);
    EXPECT_EQ(log_a.uncorrectable(), 0u);
    EXPECT_GE(log_b.uncorrectable(), 1u);
    // r is written whole-group without a prior read: nothing to attribute.
    EXPECT_EQ(log_r.uncorrectable(), 0u);
  }
  {
    FaultLog log_s, log_x, log_y;
    ProtectedVector<VecSed> s(n, &log_s, DuePolicy::record_only);
    ProtectedVector<VecSed> x(n, &log_x, DuePolicy::record_only);
    ProtectedVector<VecSed> y(n, &log_y, DuePolicy::record_only);
    fill(s, 1.0);
    fill(x, 2.0);
    fill(y, 3.0);
    corrupt_vector(y);
    pointwise_fma(s, x, y);
    EXPECT_EQ(log_s.uncorrectable(), 0u);
    EXPECT_EQ(log_x.uncorrectable(), 0u);
    EXPECT_GE(log_y.uncorrectable(), 1u);
  }
}

TEST(KernelFaultAttribution, DuePolicyOfTheCorruptOperandApplies) {
  const std::size_t n = 24;
  // a records only, b throws: a fault in a must NOT throw, a fault in b must.
  FaultLog log_a, log_b;
  {
    ProtectedVector<VecSed> a(n, &log_a, DuePolicy::record_only);
    ProtectedVector<VecSed> b(n, &log_b, DuePolicy::throw_exception);
    fill(a, 1.0);
    fill(b, 2.0);
    corrupt_vector(a);
    EXPECT_NO_THROW((void)dot(a, b));
    EXPECT_GE(log_a.uncorrectable(), 1u);
  }
  {
    ProtectedVector<VecSed> a(n, &log_a, DuePolicy::record_only);
    ProtectedVector<VecSed> b(n, &log_b, DuePolicy::throw_exception);
    fill(a, 1.0);
    fill(b, 2.0);
    corrupt_vector(b);
    log_a.clear();
    log_b.clear();
    EXPECT_THROW((void)dot(a, b), UncorrectableError);
    // The throwing operand must not swallow the other operand's accounting:
    // every log is updated before any policy raises.
    EXPECT_GE(log_a.checks(), n);
    EXPECT_GE(log_b.uncorrectable(), 1u);
  }
}

TEST(KernelFaultAttribution, SpmvAttributesXVectorFaultsToXNotTheMatrix) {
  auto a = sparse::laplacian_2d(12, 12);
  FaultLog log_m, log_x, log_y;
  auto pa = ProtectedCsr<std::uint32_t, ElemSecded, RowSecded64>::from_csr(
      a, &log_m, DuePolicy::record_only);
  ProtectedVector<VecSed> x(a.ncols(), &log_x, DuePolicy::record_only);
  ProtectedVector<VecSed> y(a.nrows(), &log_y, DuePolicy::record_only);
  fill(x, 1.0);
  corrupt_vector(x);
  spmv(pa, x, y);
  EXPECT_GE(log_x.uncorrectable(), 1u);
  EXPECT_EQ(log_m.uncorrectable(), 0u);
  EXPECT_EQ(log_m.corrected(), 0u);
  // y is only encoded, never decoded, during SpMV — nothing to attribute.
  EXPECT_EQ(log_y.uncorrectable(), 0u);
  EXPECT_EQ(log_y.checks(), 0u);
}

// ---------------------------------------------------------------------------
// Error propagation out of parallel kernels.
// ---------------------------------------------------------------------------

TEST(KernelFaults, SpmvThrowsOnSedDetection) {
  auto a = sparse::laplacian_2d(20, 20);
  auto pa = ProtectedCsr<std::uint32_t, ElemSed, RowSed>::from_csr(a);
  ProtectedVector<VecSed> x(a.ncols()), y(a.nrows());
  fill(x, 1.0);
  auto values = pa.raw_values();
  faults::flip_bit({reinterpret_cast<std::uint8_t*>(values.data()), values.size_bytes()},
                   777);
  EXPECT_THROW(spmv(pa, x, y), UncorrectableError);
}

TEST(KernelFaults, SpmvCorrectsSecdedFlipAndContinues) {
  auto a = sparse::laplacian_2d(20, 20);
  FaultLog log;
  auto pa = ProtectedCsr<std::uint32_t, ElemSecded, RowSecded64>::from_csr(a, &log);
  ProtectedVector<VecSecded64> x(a.ncols(), &log), y(a.nrows(), &log);
  fill(x, 1.0);
  auto values = pa.raw_values();
  faults::flip_bit({reinterpret_cast<std::uint8_t*>(values.data()), values.size_bytes()},
                   64 * 7 + 19);
  EXPECT_NO_THROW(spmv(pa, x, y));
  EXPECT_GE(log.corrected(), 1u);

  // And the result equals the fault-free product.
  std::vector<double> xraw(a.ncols(), VecSecded64::mask(1.0));
  std::vector<double> yref(a.nrows(), 0.0);
  sparse::spmv(a, xraw.data(), yref.data());
  std::vector<double> got(a.nrows());
  y.extract(got);
  for (std::size_t i = 0; i < a.nrows(); ++i) EXPECT_NEAR(got[i], yref[i], 1e-9);
}

TEST(KernelFaults, BoundsOnlyModeSkipsMatrixChecksButGuardsIndices) {
  auto a = sparse::laplacian_2d(16, 16);
  FaultLog log;
  auto pa =
      ProtectedCsr<std::uint32_t, ElemSed, RowSed>::from_csr(a, &log, DuePolicy::record_only);
  ProtectedVector<VecNone> x(a.ncols(), &log, DuePolicy::record_only);
  ProtectedVector<VecNone> y(a.nrows(), &log, DuePolicy::record_only);
  fill(x, 1.0);

  // Corrupt a column index to an out-of-range value (bounds-visible bits).
  pa.raw_cols()[10] = 0x7FFFFFFFu;  // masked value still >= ncols
  spmv(pa, x, y, CheckMode::bounds_only);
  EXPECT_GE(log.bounds_violations(), 1u);
  EXPECT_EQ(log.uncorrectable(), 0u) << "no integrity checks in bounds-only mode";
}

TEST(KernelFaults, BoundsOnlyThrowsBoundsViolationUnderThrowPolicy) {
  auto a = sparse::laplacian_2d(16, 16);
  auto pa = ProtectedCsr<std::uint32_t, ElemSed, RowSed>::from_csr(a);
  ProtectedVector<VecNone> x(a.ncols()), y(a.nrows());
  fill(x, 1.0);
  pa.raw_cols()[3] = 0x7FFFFFFFu;
  EXPECT_THROW(spmv(pa, x, y, CheckMode::bounds_only), BoundsViolation);
}

TEST(KernelFaults, CorruptRowPtrInBoundsOnlyModeIsCaught) {
  auto a = sparse::laplacian_2d(16, 16);
  FaultLog log;
  auto pa =
      ProtectedCsr<std::uint32_t, ElemSed, RowSed>::from_csr(a, &log, DuePolicy::record_only);
  ProtectedVector<VecNone> x(a.ncols(), &log, DuePolicy::record_only);
  ProtectedVector<VecNone> y(a.nrows(), &log, DuePolicy::record_only);
  fill(x, 1.0);
  pa.raw_row_ptr()[40] = 0x7FFFFFFEu;  // masked -> way past nnz
  spmv(pa, x, y, CheckMode::bounds_only);
  EXPECT_GE(log.bounds_violations(), 1u);
}

TEST(KernelShapes, DimensionMismatchesThrow) {
  auto a = sparse::laplacian_2d(4, 4);
  auto pa = ProtectedCsr<std::uint32_t, ElemNone, RowNone>::from_csr(a);
  ProtectedVector<VecNone> x(15), y(16), z(16);
  EXPECT_THROW(spmv(pa, x, y), std::invalid_argument);
  EXPECT_THROW((void)dot(x, y), std::invalid_argument);
  EXPECT_THROW(axpy(1.0, x, y), std::invalid_argument);
  EXPECT_THROW(xpby(x, 1.0, y), std::invalid_argument);
  EXPECT_THROW(sub(x, y, z), std::invalid_argument);
  EXPECT_THROW(pointwise_fma(x, y, z), std::invalid_argument);
}

}  // namespace
