// ProtectedCsr container: encode/decode round trips across every
// element x row scheme combination, constraint enforcement, verification
// sweeps and fault response (paper §VI-A).
#include <gtest/gtest.h>

#include <cstdint>
#include <tuple>

#include "abft/protected_csr.hpp"
#include "common/rng.hpp"
#include "faults/injector.hpp"
#include "sparse/generators.hpp"
#include "sparse/transform.hpp"

namespace {

using namespace abft;

template <class Combo>
class ProtectedCsrTest : public ::testing::Test {};

template <class E, class R>
struct Combo {
  using ES = E;
  using RS = R;
};

using AllCombos = ::testing::Types<
    Combo<ElemNone, RowNone>, Combo<ElemSed, RowSed>, Combo<ElemSecded, RowSecded64>,
    Combo<ElemSecded, RowSecded128>, Combo<ElemCrc32c, RowCrc32c>,
    Combo<ElemSed, RowSecded64>, Combo<ElemSecded, RowSed>, Combo<ElemCrc32c, RowSed>,
    Combo<ElemNone, RowCrc32c>, Combo<ElemSed, RowCrc32c>>;
TYPED_TEST_SUITE(ProtectedCsrTest, AllCombos);

template <class ES>
sparse::CsrMatrix test_matrix() {
  auto a = sparse::laplacian_2d(12, 9);
  if constexpr (ES::kMinRowNnz > 1) {
    a = sparse::pad_rows_to_min_nnz(a, ES::kMinRowNnz);
  }
  return a;
}

TYPED_TEST(ProtectedCsrTest, RoundTripPreservesMatrix) {
  using ES = typename TypeParam::ES;
  using RS = typename TypeParam::RS;
  const auto a = test_matrix<ES>();
  auto p = ProtectedCsr<std::uint32_t, ES, RS>::from_csr(a);
  const auto back = p.to_csr();
  ASSERT_EQ(back.nrows(), a.nrows());
  ASSERT_EQ(back.ncols(), a.ncols());
  ASSERT_EQ(back.nnz(), a.nnz());
  for (std::size_t i = 0; i <= a.nrows(); ++i) {
    EXPECT_EQ(back.row_ptr()[i], a.row_ptr()[i]) << i;
  }
  for (std::size_t k = 0; k < a.nnz(); ++k) {
    EXPECT_EQ(back.cols()[k], a.cols()[k]) << k;
    EXPECT_EQ(back.values()[k], a.values()[k]) << k;
  }
}

TYPED_TEST(ProtectedCsrTest, VerifyAllOnCleanMatrixIsQuiet) {
  using ES = typename TypeParam::ES;
  using RS = typename TypeParam::RS;
  FaultLog log;
  auto p = ProtectedCsr<std::uint32_t, ES, RS>::from_csr(test_matrix<ES>(), &log);
  EXPECT_EQ(p.verify_all(), 0u);
  EXPECT_EQ(log.corrected(), 0u);
  EXPECT_EQ(log.uncorrectable(), 0u);
  EXPECT_GT(log.checks(), 0u);
}

TYPED_TEST(ProtectedCsrTest, RowPtrAccessMatchesOriginal) {
  using ES = typename TypeParam::ES;
  using RS = typename TypeParam::RS;
  const auto a = test_matrix<ES>();
  auto p = ProtectedCsr<std::uint32_t, ES, RS>::from_csr(a);
  for (std::size_t i = 0; i <= a.nrows(); ++i) {
    EXPECT_EQ(p.row_ptr_at(i), a.row_ptr()[i]) << i;
    EXPECT_EQ(p.row_ptr_bounds_only(i), a.row_ptr()[i]) << i;
  }
}

TYPED_TEST(ProtectedCsrTest, ElementAccessMatchesOriginal) {
  using ES = typename TypeParam::ES;
  using RS = typename TypeParam::RS;
  const auto a = test_matrix<ES>();
  auto p = ProtectedCsr<std::uint32_t, ES, RS>::from_csr(a);
  for (std::size_t r = 0; r < a.nrows(); r += 7) {
    for (auto k = a.row_ptr()[r]; k < a.row_ptr()[r + 1]; ++k) {
      const auto el = p.element_at(r, k);
      EXPECT_EQ(el.value, a.values()[k]);
      EXPECT_EQ(el.col, a.cols()[k]);
    }
  }
}

// ---------------------------------------------------------------------------
// Constraint enforcement (paper's matrix-size limits).
// ---------------------------------------------------------------------------

TEST(ProtectedCsrLimits, SecdedRejectsWideMatrices) {
  // > 2^24-1 columns cannot be indexed once the top byte holds redundancy.
  sparse::CsrMatrix wide(1, std::size_t{1} << 25);
  wide.row_ptr() = {0, 1};
  wide.cols() = {(1u << 25) - 1};
  wide.values() = {1.0};
  EXPECT_THROW((ProtectedCsr<std::uint32_t, ElemSecded, RowNone>::from_csr(wide)), std::invalid_argument);
  // SED allows up to 2^31-1 columns, so the same matrix is fine there.
  EXPECT_NO_THROW((ProtectedCsr<std::uint32_t, ElemSed, RowNone>::from_csr(wide)));
}

TEST(ProtectedCsrLimits, CrcRejectsShortRows) {
  const auto a = sparse::laplacian_2d(8, 8);  // corner rows have 3 nnz
  EXPECT_THROW((ProtectedCsr<std::uint32_t, ElemCrc32c, RowNone>::from_csr(a)), std::invalid_argument);
  const auto padded = sparse::pad_rows_to_min_nnz(a, 4);
  EXPECT_NO_THROW((ProtectedCsr<std::uint32_t, ElemCrc32c, RowNone>::from_csr(padded)));
}

TEST(ProtectedCsrLimits, MalformedMatrixIsRejected) {
  sparse::CsrMatrix bad(2, 2);
  bad.row_ptr() = {0, 1, 3};  // row_ptr.back() != nnz
  bad.cols() = {0, 1};
  bad.values() = {1.0, 2.0};
  EXPECT_THROW((ProtectedCsr<std::uint32_t, ElemSed, RowSed>::from_csr(bad)), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Fault response.
// ---------------------------------------------------------------------------

TEST(ProtectedCsrFaults, SecdedCorrectsValueFlipDuringVerify) {
  Xoshiro256 rng(1);
  const auto a = sparse::laplacian_2d(16, 16);
  FaultLog log;
  auto p = ProtectedCsr<std::uint32_t, ElemSecded, RowSecded64>::from_csr(a, &log, DuePolicy::record_only);
  auto values = p.raw_values();
  const std::size_t bit = rng.below(values.size_bytes() * 8);
  faults::flip_bit({reinterpret_cast<std::uint8_t*>(values.data()), values.size_bytes()},
                   bit);
  EXPECT_EQ(p.verify_all(), 0u);
  EXPECT_EQ(log.corrected(), 1u);
  // Matrix restored exactly.
  const auto back = p.to_csr();
  for (std::size_t k = 0; k < a.nnz(); ++k) EXPECT_EQ(back.values()[k], a.values()[k]);
}

TEST(ProtectedCsrFaults, SecdedCorrectsRowPtrFlip) {
  const auto a = sparse::laplacian_2d(16, 16);
  FaultLog log;
  auto p = ProtectedCsr<std::uint32_t, ElemSecded, RowSecded64>::from_csr(a, &log, DuePolicy::record_only);
  auto row_ptr = p.raw_row_ptr();
  faults::flip_bit(
      {reinterpret_cast<std::uint8_t*>(row_ptr.data()), row_ptr.size_bytes()}, 37 * 32 + 9);
  EXPECT_EQ(p.verify_all(), 0u);
  EXPECT_EQ(log.corrected(), 1u);
  for (std::size_t i = 0; i <= a.nrows(); ++i) EXPECT_EQ(p.row_ptr_at(i), a.row_ptr()[i]);
}

TEST(ProtectedCsrFaults, SedDetectsButCannotCorrect) {
  const auto a = sparse::laplacian_2d(10, 10);
  FaultLog log;
  auto p = ProtectedCsr<std::uint32_t, ElemSed, RowSed>::from_csr(a, &log, DuePolicy::record_only);
  auto values = p.raw_values();
  faults::flip_bit({reinterpret_cast<std::uint8_t*>(values.data()), values.size_bytes()},
                   123);
  EXPECT_GE(p.verify_all(), 1u);
  EXPECT_EQ(log.corrected(), 0u);
  EXPECT_GE(log.uncorrectable(), 1u);
}

TEST(ProtectedCsrFaults, ThrowPolicyRaisesOnVerify) {
  const auto a = sparse::laplacian_2d(10, 10);
  auto p = ProtectedCsr<std::uint32_t, ElemSed, RowSed>::from_csr(a);
  auto values = p.raw_values();
  faults::flip_bit({reinterpret_cast<std::uint8_t*>(values.data()), values.size_bytes()},
                   200);
  EXPECT_THROW(p.verify_all(), UncorrectableError);
}

TEST(ProtectedCsrFaults, DoubleFlipInOneElementIsDue) {
  const auto a = sparse::laplacian_2d(10, 10);
  FaultLog log;
  auto p = ProtectedCsr<std::uint32_t, ElemSecded, RowSecded64>::from_csr(a, &log, DuePolicy::record_only);
  auto values = p.raw_values();
  auto bytes = std::span<std::uint8_t>(reinterpret_cast<std::uint8_t*>(values.data()),
                                       values.size_bytes());
  faults::flip_bit(bytes, 64 * 5 + 3);
  faults::flip_bit(bytes, 64 * 5 + 44);
  EXPECT_GE(p.verify_all(), 1u);
  EXPECT_GE(log.uncorrectable(), 1u);
}

TEST(ProtectedCsrFaults, CorruptRowPtrIsBoundsGuardedInVerify) {
  // With an undetecting row scheme (RowNone) a corrupted offset must still
  // be caught by the range guard rather than fault the sweep.
  const auto a = sparse::laplacian_2d(10, 10);
  FaultLog log;
  auto p = ProtectedCsr<std::uint32_t, ElemNone, RowNone>::from_csr(a, &log, DuePolicy::record_only);
  p.raw_row_ptr()[5] = 0x7F000000u;  // way past nnz
  (void)p.verify_all();
  EXPECT_GE(log.bounds_violations(), 1u);
}

TEST(ProtectedCsrFaults, CorruptRowPtrIsBoundsGuardedInRowAccessors) {
  // The format-uniform slow-path accessors must not underflow the row count
  // or read past the value array when an offset survives corrupted: the
  // row reads as empty and the violation is logged (paper §VI-A2).
  const auto a = sparse::laplacian_2d(10, 10);
  FaultLog log;
  auto p =
      ProtectedCsr<std::uint32_t, ElemNone, RowNone>::from_csr(a, &log, DuePolicy::record_only);
  p.raw_row_ptr()[5] = 0x7F000000u;  // begin > end for row 5, end > nnz for row 4
  EXPECT_EQ(p.row_nnz_at(5), 0u);
  EXPECT_GE(log.bounds_violations(), 1u);
  EXPECT_THROW((void)p.element_in_row(4, a.row_nnz(4) + 1000), BoundsViolation);
}

}  // namespace
