// sparse::Sell — the SELL-C-sigma container: CSR round trips (including
// adversarial row-length distributions through the CSR<->ELL<->SELL converter
// chain), permutation correctness, bit-identical SpMV against CSR, and
// structural validation.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "sparse/csr.hpp"
#include "sparse/ell.hpp"
#include "sparse/generators.hpp"
#include "sparse/sell.hpp"

namespace {

using namespace abft;

/// Build a CSR matrix with the given per-row lengths: distinct ascending
/// random columns, random values. Lets the property tests dial in
/// adversarial distributions (empty rows, one dense row, all-equal rows).
sparse::CsrMatrix csr_from_row_lengths(std::size_t ncols,
                                       const std::vector<std::size_t>& lens,
                                       Xoshiro256& rng) {
  sparse::CsrMatrix out(lens.size(), ncols);
  auto& row_ptr = out.row_ptr();
  auto& cols = out.cols();
  auto& values = out.values();
  for (std::size_t r = 0; r < lens.size(); ++r) {
    row_ptr[r] = static_cast<std::uint32_t>(values.size());
    std::vector<std::uint32_t> picked;
    while (picked.size() < lens[r]) {
      const auto c = static_cast<std::uint32_t>(rng.below(ncols));
      if (std::find(picked.begin(), picked.end(), c) == picked.end()) {
        picked.push_back(c);
      }
    }
    std::sort(picked.begin(), picked.end());
    for (const auto c : picked) {
      cols.push_back(c);
      values.push_back(rng.uniform(-50, 50));
    }
  }
  row_ptr[lens.size()] = static_cast<std::uint32_t>(values.size());
  out.validate();
  return out;
}

void expect_csr_equal(const sparse::CsrMatrix& got, const sparse::CsrMatrix& want) {
  EXPECT_EQ(got.row_ptr(), want.row_ptr());
  EXPECT_EQ(got.cols(), want.cols());
  EXPECT_EQ(got.values(), want.values());
}

TEST(Sell, FromCsrRoundTripsStencilMatrix) {
  const auto a = sparse::laplacian_2d(13, 9);
  const auto s = sparse::SellMatrix::from_csr(a);
  EXPECT_EQ(s.nrows(), a.nrows());
  EXPECT_EQ(s.ncols(), a.ncols());
  EXPECT_EQ(s.nnz(), a.nnz());
  EXPECT_EQ(s.nslices(), (a.nrows() + s.slice_height() - 1) / s.slice_height());
  s.validate();
  expect_csr_equal(s.to_csr(), a);
}

TEST(Sell, SigmaSortingShrinksPaddingVersusEll) {
  // The 5-point Laplacian mixes row lengths 3/4/5; plain ELL pads everything
  // to 5, while sigma-sorted slices pad only to their own longest row.
  const auto a = sparse::laplacian_2d(32, 32);
  const auto e = sparse::EllMatrix::from_csr(a);
  const auto s = sparse::SellMatrix::from_csr(a);
  EXPECT_LT(s.slots(), e.nrows() * e.width());
  EXPECT_EQ(s.nnz(), e.nnz());
}

TEST(Sell, RoundTripsAdversarialRowLengthDistributions) {
  Xoshiro256 rng(5);
  const std::size_t n = 150;
  std::vector<std::vector<std::size_t>> distributions;
  // Empty rows scattered through random lengths.
  {
    std::vector<std::size_t> lens(n);
    for (auto& l : lens) l = rng.below(7);
    for (std::size_t r = 0; r < n; r += 11) lens[r] = 0;
    distributions.push_back(lens);
  }
  // One dense row in an otherwise sparse matrix.
  {
    std::vector<std::size_t> lens(n, 2);
    lens[n / 2] = n;
    distributions.push_back(lens);
  }
  // All-equal rows (no permutation movement at all).
  distributions.push_back(std::vector<std::size_t>(n, 4));
  // Strictly increasing lengths (maximum permutation movement per window).
  {
    std::vector<std::size_t> lens(n);
    for (std::size_t r = 0; r < n; ++r) lens[r] = r % 9;
    distributions.push_back(lens);
  }
  // All rows empty.
  distributions.push_back(std::vector<std::size_t>(n, 0));

  for (std::size_t d = 0; d < distributions.size(); ++d) {
    const auto a = csr_from_row_lengths(n, distributions[d], rng);
    for (const auto [slice, window] :
         {std::pair<std::size_t, std::size_t>{1, 1}, {4, 8}, {7, 3}, {32, 64},
          {64, 64}, {256, 128}}) {
      const auto s = sparse::SellMatrix::from_csr(a, 0, slice, window);
      s.validate();
      SCOPED_TRACE("distribution " + std::to_string(d) + " C=" + std::to_string(slice) +
                   " sigma=" + std::to_string(window));
      expect_csr_equal(s.to_csr(), a);
    }
  }
}

TEST(Sell, RoundTripsThroughEllChain) {
  // CSR -> ELL -> CSR -> SELL -> CSR must be the identity: the converters
  // compose, so every pairwise conversion in the CSR<->ELL<->SELL triangle
  // is covered by the shared CSR interchange.
  Xoshiro256 rng(6);
  const auto a = sparse::random_spd(170, 6, /*seed=*/17);
  const auto via_ell = sparse::EllMatrix::from_csr(a).to_csr();
  expect_csr_equal(via_ell, a);
  const auto via_sell = sparse::SellMatrix::from_csr(via_ell).to_csr();
  expect_csr_equal(via_sell, a);
  const auto back_through_ell =
      sparse::EllMatrix::from_csr(sparse::SellMatrix::from_csr(a).to_csr()).to_csr();
  expect_csr_equal(back_through_ell, a);
}

TEST(Sell, PermutationIsInverseConsistentAndWindowSorted) {
  Xoshiro256 rng(7);
  std::vector<std::size_t> lens(130);
  for (auto& l : lens) l = rng.below(9);
  const auto a = csr_from_row_lengths(130, lens, rng);
  const std::size_t window = 16;
  const auto s = sparse::SellMatrix::from_csr(a, 0, 8, window);

  // perm is a bijection and the stored lengths match the original rows.
  std::vector<std::size_t> inv(s.nrows(), s.nrows());
  for (std::size_t i = 0; i < s.nrows(); ++i) {
    ASSERT_LT(s.perm()[i], s.nrows());
    ASSERT_EQ(inv[s.perm()[i]], s.nrows()) << "duplicate perm target";
    inv[s.perm()[i]] = i;
    EXPECT_EQ(s.row_nnz()[i], a.row_nnz(s.perm()[i])) << i;
  }
  for (std::size_t r = 0; r < s.nrows(); ++r) {
    ASSERT_LT(inv[r], s.nrows());
    EXPECT_EQ(s.perm()[inv[r]], r);
  }
  // Within every sort window the stored lengths are non-increasing and the
  // permutation never leaves the window.
  for (std::size_t w0 = 0; w0 < s.nrows(); w0 += window) {
    const std::size_t w1 = std::min(w0 + window, s.nrows());
    for (std::size_t i = w0; i < w1; ++i) {
      EXPECT_GE(s.perm()[i], w0);
      EXPECT_LT(s.perm()[i], w1);
      if (i > w0) EXPECT_LE(s.row_nnz()[i], s.row_nnz()[i - 1]) << i;
    }
  }
}

TEST(Sell, DefaultPermutationIsChunkLocal) {
  // The protected container requires the permutation to stay inside aligned
  // 64-row blocks; the default sort window must guarantee that.
  const auto a = sparse::random_spd(333, 5, /*seed=*/21);
  const auto s = sparse::SellMatrix::from_csr(a);
  for (std::size_t i = 0; i < s.nrows(); ++i) {
    EXPECT_EQ(i / 64, s.perm()[i] / 64) << i;
  }
}

TEST(Sell, MinWidthPadsSlicesNotRows) {
  const auto a = sparse::laplacian_2d(6, 6);
  const auto s = sparse::SellMatrix::from_csr(a, 8);
  for (std::size_t sl = 0; sl < s.nslices(); ++sl) EXPECT_GE(s.slice_width(sl), 8u);
  EXPECT_EQ(s.nnz(), a.nnz());  // padding slots are not non-zeros
  s.validate();
  expect_csr_equal(s.to_csr(), a);
}

TEST(Sell, SpmvBitIdenticalToCsr) {
  for (auto [nx, ny] : {std::pair<std::size_t, std::size_t>{16, 16}, {31, 5}}) {
    const auto a = sparse::laplacian_2d(nx, ny);
    const auto s = sparse::SellMatrix::from_csr(a);
    Xoshiro256 rng(9);
    std::vector<double> x(a.ncols()), y_csr(a.nrows()), y_sell(a.nrows());
    for (auto& v : x) v = rng.uniform(-3, 3);
    sparse::spmv(a, x.data(), y_csr.data());
    sparse::spmv(s, x.data(), y_sell.data());
    for (std::size_t i = 0; i < a.nrows(); ++i) {
      EXPECT_EQ(y_csr[i], y_sell[i]) << i;  // exact: same accumulation order per row
    }
  }
}

TEST(Sell, SpmvBitIdenticalToCsrOnIrregularMatrix) {
  Xoshiro256 rng(10);
  std::vector<std::size_t> lens(201);
  for (auto& l : lens) l = rng.below(11);
  lens[0] = 0;
  lens[200] = 150;
  const auto a = csr_from_row_lengths(201, lens, rng);
  for (const auto [slice, window] :
       {std::pair<std::size_t, std::size_t>{32, 64}, {5, 20}, {1, 1}}) {
    const auto s = sparse::SellMatrix::from_csr(a, 0, slice, window);
    std::vector<double> x(a.ncols()), y_csr(a.nrows()), y_sell(a.nrows(), -7.0);
    for (auto& v : x) v = rng.uniform(-3, 3);
    sparse::spmv(a, x.data(), y_csr.data());
    sparse::spmv(s, x.data(), y_sell.data());
    for (std::size_t i = 0; i < a.nrows(); ++i) EXPECT_EQ(y_csr[i], y_sell[i]) << i;
  }
}

TEST(Sell, WideIndexConversionAgrees) {
  const auto a32 = sparse::laplacian_2d(9, 9);
  const auto s64 = sparse::Sell64Matrix::from_csr(sparse::Csr64Matrix::from_csr(a32));
  const auto s32 = sparse::SellMatrix::from_csr(a32);
  ASSERT_EQ(s64.slots(), s32.slots());
  ASSERT_EQ(s64.nslices(), s32.nslices());
  for (std::size_t k = 0; k < s32.values().size(); ++k) {
    EXPECT_EQ(s64.values()[k], s32.values()[k]);
    EXPECT_EQ(s64.cols()[k], static_cast<std::uint64_t>(s32.cols()[k]));
  }
  for (std::size_t i = 0; i < s32.nrows(); ++i) {
    EXPECT_EQ(s64.perm()[i], static_cast<std::uint64_t>(s32.perm()[i]));
  }
}

TEST(Sell, ValidateRejectsMalformedStructure) {
  const auto a = sparse::laplacian_2d(8, 8);
  auto s = sparse::SellMatrix::from_csr(a);
  s.row_nnz()[3] = 200;  // > slice width
  EXPECT_THROW(s.validate(), std::invalid_argument);

  auto s2 = sparse::SellMatrix::from_csr(a);
  s2.cols()[5] = 1000;  // >= ncols (64)
  EXPECT_THROW(s2.validate(), std::invalid_argument);

  auto s3 = sparse::SellMatrix::from_csr(a);
  s3.perm()[4] = s3.perm()[5];  // duplicate -> not a permutation
  EXPECT_THROW(s3.validate(), std::invalid_argument);

  auto s4 = sparse::SellMatrix::from_csr(a);
  s4.cols().pop_back();  // slab size mismatch
  EXPECT_THROW(s4.validate(), std::invalid_argument);
}

TEST(Sell, ConstructorRejectsBadShapes) {
  EXPECT_THROW(sparse::SellMatrix::from_csr(sparse::laplacian_2d(4, 4), 0, 0),
               std::invalid_argument);  // zero slice height
  EXPECT_THROW(sparse::SellMatrix::from_csr(sparse::laplacian_2d(4, 4), 0, 1000),
               std::invalid_argument);  // above kMaxSliceHeight
  const std::uint32_t widths[1] = {5};
  EXPECT_THROW(sparse::SellMatrix(100, 100, 32, {widths, 1}),
               std::invalid_argument);  // widths size != nslices
}

TEST(Sell, AtLooksUpEntries) {
  const auto s = sparse::SellMatrix::from_csr(sparse::laplacian_2d(5, 5));
  EXPECT_EQ(s.at(12, 12), 4.0);   // interior diagonal
  EXPECT_EQ(s.at(12, 11), -1.0);  // west neighbour
  EXPECT_EQ(s.at(12, 0), 0.0);    // structural zero
}

}  // namespace
