// Jacobi-preconditioned CG (TeaLeaf's jac_diag configuration).
#include <gtest/gtest.h>

#include <cmath>

#include "abft/abft.hpp"
#include "solvers/solvers.hpp"
#include "sparse/coo.hpp"
#include "sparse/generators.hpp"
#include "sparse/vector_ops.hpp"

namespace {

using namespace abft;
using namespace abft::solvers;

template <class ES, class RS, class VS>
std::pair<SolveResult, double> run_pcg(unsigned interval = 1) {
  auto a = sparse::random_spd(200, 5, 31);
  aligned_vector<double> ones(a.nrows(), 1.0), rhs(a.nrows(), 0.0);
  sparse::spmv(a, ones.data(), rhs.data());
  auto pa = ProtectedCsr<std::uint32_t, ES, RS>::from_csr(a);
  ProtectedVector<VS> b(a.nrows()), u(a.nrows());
  b.assign({rhs.data(), a.nrows()});
  SolveOptions opts;
  opts.tolerance = 1e-11;
  opts.check_policy = CheckIntervalPolicy(interval);
  const auto res = pcg_jacobi_solve(pa, b, u, opts);
  aligned_vector<double> got(a.nrows());
  u.extract(got);
  double err = 0.0;
  for (double g : got) err = std::max(err, std::abs(g - 1.0));
  return {res, err};
}

TEST(PcgJacobi, ConvergesUnprotected) {
  const auto [res, err] = run_pcg<ElemNone, RowNone, VecNone>();
  EXPECT_TRUE(res.converged);
  EXPECT_LT(err, 1e-8);
}

TEST(PcgJacobi, ConvergesFullyProtected) {
  const auto [res, err] = run_pcg<ElemSecded, RowSecded64, VecSecded64>();
  EXPECT_TRUE(res.converged);
  EXPECT_LT(err, 1e-7);
}

TEST(PcgJacobi, ConvergesWithCheckInterval) {
  const auto [res, err] = run_pcg<ElemSed, RowSed, VecSed>(8);
  EXPECT_TRUE(res.converged);
  EXPECT_LT(err, 1e-7);
}

TEST(PcgJacobi, BeatsPlainCgOnIllConditionedDiagonal) {
  // Strongly varying diagonal: Jacobi preconditioning should cut iterations.
  sparse::CooMatrix coo(300, 300);
  Xoshiro256 rng(5);
  for (std::size_t i = 0; i < 300; ++i) {
    coo.add(i, i, std::pow(10.0, rng.uniform(0, 4)));
    if (i + 1 < 300) {
      coo.add(i, i + 1, -0.1);
      coo.add(i + 1, i, -0.1);
    }
  }
  auto a = coo.to_csr();
  aligned_vector<double> ones(300, 1.0), rhs(300, 0.0);
  sparse::spmv(a, ones.data(), rhs.data());
  auto pa = ProtectedCsr<std::uint32_t, ElemNone, RowNone>::from_csr(a);
  ProtectedVector<VecNone> b(300), u1(300), u2(300);
  b.assign({rhs.data(), 300});
  SolveOptions opts;
  opts.tolerance = 1e-10;
  opts.max_iterations = 100000;
  const auto plain = cg_solve(pa, b, u1, opts);
  const auto pcg = pcg_jacobi_solve(pa, b, u2, opts);
  ASSERT_TRUE(plain.converged);
  ASSERT_TRUE(pcg.converged);
  EXPECT_LT(pcg.iterations, plain.iterations);
}

}  // namespace
