// Check-interval semantics (paper §VI-A2): skipping integrity checks
// amortises their cost, errors are found at the next full check or at the
// mandatory end-of-solve sweep, and no error ever escapes a time-step.
#include <gtest/gtest.h>

#include <cstdint>

#include "abft/abft.hpp"
#include "faults/injector.hpp"
#include "solvers/cg.hpp"
#include "sparse/generators.hpp"
#include "sparse/vector_ops.hpp"

namespace {

using namespace abft;
using namespace abft::solvers;

struct Problem {
  sparse::CsrMatrix a;
  aligned_vector<double> rhs;

  Problem() {
    a = sparse::laplacian_2d(20, 20);
    aligned_vector<double> ones(a.nrows(), 1.0);
    rhs.assign(a.nrows(), 0.0);
    sparse::spmv(a, ones.data(), rhs.data());
  }
};

TEST(CheckInterval, SkipIterationsRunFewerMatrixChecks) {
  Problem prob;
  const auto count_checks = [&](unsigned interval) {
    FaultLog log;
    auto pa = ProtectedCsr<std::uint32_t, ElemSecded, RowSecded64>::from_csr(prob.a, &log,
                                                              DuePolicy::record_only);
    // Vectors carry no log so the counter sees only matrix checks.
    ProtectedVector<VecNone> b(prob.a.nrows()), u(prob.a.nrows());
    b.assign({prob.rhs.data(), prob.rhs.size()});
    SolveOptions opts;
    opts.tolerance = 0.0;  // fixed work
    opts.max_iterations = 32;
    opts.check_policy = CheckIntervalPolicy(interval);
    opts.final_matrix_verify = false;
    (void)cg_solve(pa, b, u, opts);
    return log.checks();
  };
  const auto every = count_checks(1);
  const auto fourth = count_checks(4);
  const auto sixteenth = count_checks(16);
  // Vector decodes commit to the vectors' own (absent) log, so the counter
  // sees matrix checks alone; skip iterations still pay the final
  // end-of-interval full pass, so the reduction is not a clean 1/4 and
  // 1/16 — but it must be strictly and substantially ordered.
  EXPECT_LT(fourth, (every * 3) / 4);
  EXPECT_LT(sixteenth, fourth);

  // Isolated single-SpMV comparison: bounds-only skips all matrix codeword
  // checks, and x's decodes belong to x's (absent) log — nothing remains.
  FaultLog log_full, log_bounds;
  auto pa_full = ProtectedCsr<std::uint32_t, ElemSecded, RowSecded64>::from_csr(prob.a, &log_full,
                                                                 DuePolicy::record_only);
  auto pa_bounds = ProtectedCsr<std::uint32_t, ElemSecded, RowSecded64>::from_csr(
      prob.a, &log_bounds, DuePolicy::record_only);
  ProtectedVector<VecNone> x(prob.a.ncols()), y(prob.a.nrows());
  fill(x, 1.0);
  spmv(pa_full, x, y, CheckMode::full);
  spmv(pa_bounds, x, y, CheckMode::bounds_only);
  // Full mode adds at least one check per matrix element on top.
  EXPECT_GE(log_full.checks(), log_bounds.checks() + prob.a.nnz());
  EXPECT_EQ(log_bounds.checks(), 0u)
      << "bounds-only matrix checks are skipped and x's decodes are x's";
}

TEST(CheckInterval, CorrectableFaultIsFoundAtNextFullCheck) {
  Problem prob;
  FaultLog log;
  auto pa = ProtectedCsr<std::uint32_t, ElemSecded, RowSecded64>::from_csr(prob.a, &log,
                                                            DuePolicy::record_only);
  ProtectedVector<VecSecded64> b(prob.a.nrows(), &log, DuePolicy::record_only);
  ProtectedVector<VecSecded64> u(prob.a.nrows(), &log, DuePolicy::record_only);
  b.assign({prob.rhs.data(), prob.rhs.size()});

  auto vals = pa.raw_values();
  faults::flip_bit({reinterpret_cast<std::uint8_t*>(vals.data()), vals.size_bytes()},
                   64 * 13 + 21);

  SolveOptions opts;
  opts.tolerance = 1e-11;
  opts.check_policy = CheckIntervalPolicy(8);
  const auto res = cg_solve(pa, b, u, opts);
  EXPECT_TRUE(res.converged);
  EXPECT_GE(log.corrected(), 1u) << "flip must be caught at a full-check iteration";

  // And the matrix ends the solve fully repaired.
  log.clear();
  EXPECT_EQ(pa.verify_all(), 0u);
  EXPECT_EQ(log.corrected(), 0u);
}

TEST(CheckInterval, DetectionOnlySchemeStillCatchesByFinalSweep) {
  // Paper: with intervals the correction ability is effectively lost, so
  // detection codes (SED) are recommended; the end-of-timestep sweep
  // guarantees the error cannot escape unnoticed.
  Problem prob;
  FaultLog log;
  auto pa =
      ProtectedCsr<std::uint32_t, ElemSed, RowSed>::from_csr(prob.a, &log, DuePolicy::record_only);
  ProtectedVector<VecNone> b(prob.a.nrows()), u(prob.a.nrows());
  b.assign({prob.rhs.data(), prob.rhs.size()});

  auto vals = pa.raw_values();
  faults::flip_bit({reinterpret_cast<std::uint8_t*>(vals.data()), vals.size_bytes()},
                   64 * 3 + 50);

  SolveOptions opts;
  opts.tolerance = 0.0;
  // Interval longer than the whole solve: the per-iteration SpMV only ever
  // runs in bounds-only mode after iteration 0... except iteration 0 itself
  // is a full check, so push the fault detection entirely onto the final
  // sweep by using a huge interval and checking from iteration 1.
  opts.max_iterations = 6;
  opts.check_policy = CheckIntervalPolicy(1000);
  opts.final_matrix_verify = true;
  (void)cg_solve(pa, b, u, opts);
  EXPECT_GE(log.uncorrectable(), 1u) << "final sweep must detect the SED fault";
}

TEST(CheckInterval, BoundsGuardPreventsSegfaultOnSkippedIterations) {
  Problem prob;
  FaultLog log;
  auto pa =
      ProtectedCsr<std::uint32_t, ElemSed, RowSed>::from_csr(prob.a, &log, DuePolicy::record_only);
  ProtectedVector<VecNone> b(prob.a.nrows()), u(prob.a.nrows());
  b.assign({prob.rhs.data(), prob.rhs.size()});

  // Corrupt a column index so the masked value is far out of range; with
  // interval 1000 every SpMV after the first runs unchecked and must rely
  // on the range guard.
  pa.raw_cols()[17] = 0x7FFFFFFFu;

  SolveOptions opts;
  opts.tolerance = 0.0;
  opts.max_iterations = 6;
  opts.check_policy = CheckIntervalPolicy(1000);
  opts.final_matrix_verify = false;
  (void)cg_solve(pa, b, u, opts);  // must not crash
  EXPECT_GE(log.bounds_violations(), 1u);
}

}  // namespace
