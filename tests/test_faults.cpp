// Fault injector determinism and the end-to-end injection campaigns that
// reproduce the paper's resilience claims (§IV, §VI).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "faults/campaign.hpp"
#include "faults/injector.hpp"

namespace {

using namespace abft;
using namespace abft::faults;

TEST(Injector, FlipAndReadBit) {
  std::vector<std::uint8_t> buf(4, 0);
  flip_bit(buf, 0);
  EXPECT_EQ(buf[0], 0x01);
  EXPECT_TRUE(read_bit(buf, 0));
  flip_bit(buf, 0);
  EXPECT_EQ(buf[0], 0x00);
  flip_bit(buf, 15);
  EXPECT_EQ(buf[1], 0x80);
  EXPECT_TRUE(read_bit(buf, 15));
}

TEST(Injector, SingleInjectionFlipsExactlyOneBit) {
  Injector inj(42);
  std::vector<std::uint8_t> buf(64, 0);
  const auto f = inj.inject_single(buf);
  EXPECT_LT(f.bit_offset, buf.size() * 8);
  int set = 0;
  for (auto b : buf) set += __builtin_popcount(b);
  EXPECT_EQ(set, 1);
  EXPECT_TRUE(read_bit(buf, f.bit_offset));
}

TEST(Injector, DeterministicInSeed) {
  std::vector<std::uint8_t> a(32, 0), b(32, 0), c(32, 0);
  Injector(7).inject_multi(a, 5);
  Injector(7).inject_multi(b, 5);
  Injector(8).inject_multi(c, 5);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(Injector, MultiInjectionFlipsDistinctBits) {
  Injector inj(9);
  std::vector<std::uint8_t> buf(16, 0);
  const auto flips = inj.inject_multi(buf, 10);
  EXPECT_EQ(flips.size(), 10u);
  int set = 0;
  for (auto b : buf) set += __builtin_popcount(b);
  EXPECT_EQ(set, 10);
}

TEST(Injector, BurstFlipsContiguousRun) {
  Injector inj(10);
  std::vector<std::uint8_t> buf(16, 0);
  const auto f = inj.inject_burst(buf, 12);
  EXPECT_EQ(f.bits, 12u);
  for (unsigned b = 0; b < 12; ++b) EXPECT_TRUE(read_bit(buf, f.bit_offset + b));
  int set = 0;
  for (auto b : buf) set += __builtin_popcount(b);
  EXPECT_EQ(set, 12);
}

TEST(Injector, BurstClampsToRegion) {
  Injector inj(11);
  std::vector<std::uint8_t> buf(2, 0);
  const auto f = inj.inject_burst(buf, 100);
  EXPECT_EQ(f.bits, 16u);
}

// ---------------------------------------------------------------------------
// Campaigns: reproduce the codes' guarantees end to end. Small grids and
// trial counts keep these fast; the bench binary runs the full version.
// ---------------------------------------------------------------------------

CampaignConfig small_config(ecc::Scheme scheme, Target target, FaultModel model,
                            unsigned k) {
  CampaignConfig cfg;
  cfg.scheme = scheme;
  cfg.target = target;
  cfg.model = model;
  cfg.flips_per_trial = k;
  cfg.trials = 40;
  cfg.nx = 24;
  cfg.ny = 24;
  cfg.seed = 2024;
  return cfg;
}

TEST(Campaign, SecdedSingleFlipsAreNeverSdc) {
  const auto res = run_injection_campaign(
      small_config(ecc::Scheme::secded64, Target::any, FaultModel::single_flip, 1));
  EXPECT_EQ(res.trials, 40u);
  EXPECT_EQ(res.sdc, 0u) << "SECDED must correct or at least detect single flips";
  EXPECT_EQ(res.not_converged, 0u);
  // The vast majority land in protected data bits and are corrected.
  EXPECT_GE(res.detected_corrected + res.benign, res.trials - res.detected_uncorrectable);
  EXPECT_GT(res.detected_corrected, res.trials / 2);
}

TEST(Campaign, CrcSingleFlipsAreCorrected) {
  const auto res = run_injection_campaign(
      small_config(ecc::Scheme::crc32c, Target::any, FaultModel::single_flip, 1));
  EXPECT_EQ(res.sdc, 0u);
  EXPECT_GT(res.detected_corrected, res.trials / 2);
}

TEST(Campaign, SedSingleFlipsAreDetectedNotCorrected) {
  const auto res = run_injection_campaign(
      small_config(ecc::Scheme::sed, Target::any, FaultModel::single_flip, 1));
  EXPECT_EQ(res.sdc, 0u) << "SED detects all single flips";
  EXPECT_EQ(res.detected_corrected, 0u) << "SED cannot correct";
  EXPECT_GT(res.detected_uncorrectable, res.trials / 2);
}

TEST(Campaign, UnprotectedMatrixValuesSufferSdc) {
  // Flips into the exponent/sign bits of matrix values with no protection
  // must eventually produce silent corruptions or breakdowns.
  auto cfg = small_config(ecc::Scheme::none, Target::csr_values, FaultModel::single_flip, 1);
  cfg.trials = 60;
  const auto res = run_injection_campaign(cfg);
  EXPECT_EQ(res.detected(), 0u) << "nothing to detect with";
  EXPECT_GT(res.sdc + res.not_converged, 0u) << "no-protection baseline must show damage";
  EXPECT_GT(res.benign, 0u) << "low mantissa flips are usually harmless";
}

TEST(Campaign, SecdedDoubleFlipsDetectedOrBenign) {
  const auto res = run_injection_campaign(
      small_config(ecc::Scheme::secded64, Target::csr_values, FaultModel::multi_flip, 2));
  // Two flips in the same codeword -> DUE; in different codewords -> two
  // corrections. Either way nothing silent goes wrong.
  EXPECT_EQ(res.sdc, 0u);
  EXPECT_EQ(res.not_converged, 0u);
}

TEST(Campaign, CrcDetectsBurstsUpTo32Bits) {
  const auto res = run_injection_campaign(
      small_config(ecc::Scheme::crc32c, Target::csr_values, FaultModel::burst, 32));
  EXPECT_EQ(res.sdc, 0u) << "CRC32C guarantees burst detection <= 32 bits";
  EXPECT_EQ(res.benign, 0u) << "a 32-bit burst in values can never be invisible";
  EXPECT_EQ(res.detected(), res.trials);
}

TEST(Campaign, RowPtrFlipsAreContained) {
  for (auto scheme : {ecc::Scheme::sed, ecc::Scheme::secded64, ecc::Scheme::crc32c}) {
    const auto res = run_injection_campaign(
        small_config(scheme, Target::csr_row_ptr, FaultModel::single_flip, 1));
    EXPECT_EQ(res.sdc, 0u) << ecc::to_string(scheme);
    EXPECT_EQ(res.not_converged, 0u) << ecc::to_string(scheme);
  }
}

TEST(Campaign, RhsVectorFlipsAreContained) {
  const auto res = run_injection_campaign(
      small_config(ecc::Scheme::secded64, Target::rhs_vector, FaultModel::single_flip, 1));
  EXPECT_EQ(res.sdc, 0u);
  EXPECT_GT(res.detected_corrected, 0u);
}

TEST(Campaign, ResultCountsAreConsistent) {
  const auto res = run_injection_campaign(
      small_config(ecc::Scheme::secded128, Target::any, FaultModel::single_flip, 1));
  EXPECT_EQ(res.detected_corrected + res.detected_uncorrectable + res.bounds_caught +
                res.benign + res.sdc + res.not_converged,
            res.trials);
}

TEST(Campaign, EllSecdedSingleFlipsAreNeverSdc) {
  auto cfg = small_config(ecc::Scheme::secded64, Target::any, FaultModel::single_flip, 1);
  cfg.format = MatrixFormat::ell;
  const auto res = run_injection_campaign(cfg);
  EXPECT_EQ(res.sdc, 0u);
  EXPECT_EQ(res.not_converged, 0u);
  EXPECT_GT(res.detected_corrected, res.trials / 2);
}

TEST(Campaign, EllRowWidthFlipsAreContained) {
  for (auto scheme : {ecc::Scheme::sed, ecc::Scheme::secded64, ecc::Scheme::crc32c}) {
    auto cfg =
        small_config(scheme, Target::ell_row_width, FaultModel::single_flip, 1);
    cfg.format = MatrixFormat::ell;
    const auto res = run_injection_campaign(cfg);
    EXPECT_EQ(res.sdc, 0u) << ecc::to_string(scheme);
    EXPECT_EQ(res.not_converged, 0u) << ecc::to_string(scheme);
  }
}

TEST(Campaign, EllColumnFlipsAreContained) {
  auto cfg = small_config(ecc::Scheme::crc32c, Target::ell_cols, FaultModel::single_flip, 1);
  cfg.format = MatrixFormat::ell;
  const auto res = run_injection_campaign(cfg);
  EXPECT_EQ(res.sdc, 0u);
  EXPECT_GT(res.detected_corrected, res.trials / 2);
}

TEST(Campaign, SellSecdedSingleFlipsAreNeverSdc) {
  auto cfg = small_config(ecc::Scheme::secded64, Target::any, FaultModel::single_flip, 1);
  cfg.format = MatrixFormat::sell;
  const auto res = run_injection_campaign(cfg);
  EXPECT_EQ(res.sdc, 0u);
  EXPECT_EQ(res.not_converged, 0u);
  EXPECT_GT(res.detected_corrected, res.trials / 2);
}

TEST(Campaign, SellStructureFlipsAreContained) {
  // The SELL structural region bundles slice widths, row lengths and the
  // permutation — flips anywhere in it must never go silent.
  for (auto scheme : {ecc::Scheme::sed, ecc::Scheme::secded64, ecc::Scheme::crc32c}) {
    auto cfg =
        small_config(scheme, Target::sell_structure, FaultModel::single_flip, 1);
    cfg.format = MatrixFormat::sell;
    const auto res = run_injection_campaign(cfg);
    EXPECT_EQ(res.sdc, 0u) << ecc::to_string(scheme);
    EXPECT_EQ(res.not_converged, 0u) << ecc::to_string(scheme);
  }
}

TEST(Campaign, SellColumnFlipsAreContained) {
  auto cfg =
      small_config(ecc::Scheme::crc32c, Target::sell_cols, FaultModel::single_flip, 1);
  cfg.format = MatrixFormat::sell;
  const auto res = run_injection_campaign(cfg);
  EXPECT_EQ(res.sdc, 0u);
  EXPECT_GT(res.detected_corrected, res.trials / 2);
}

TEST(Campaign, FormatMismatchedTargetsAreRejected) {
  auto cfg = small_config(ecc::Scheme::secded64, Target::csr_row_ptr,
                          FaultModel::single_flip, 1);
  cfg.format = MatrixFormat::ell;
  EXPECT_THROW((void)run_injection_campaign(cfg), std::invalid_argument);
  auto cfg2 = small_config(ecc::Scheme::secded64, Target::ell_row_width,
                           FaultModel::single_flip, 1);
  cfg2.format = MatrixFormat::csr;
  EXPECT_THROW((void)run_injection_campaign(cfg2), std::invalid_argument);
  auto cfg4 = small_config(ecc::Scheme::secded64, Target::sell_structure,
                           FaultModel::single_flip, 1);
  cfg4.format = MatrixFormat::ell;
  EXPECT_THROW((void)run_injection_campaign(cfg4), std::invalid_argument);
  auto cfg5 = small_config(ecc::Scheme::secded64, Target::csr_values,
                           FaultModel::single_flip, 1);
  cfg5.format = MatrixFormat::sell;
  EXPECT_THROW((void)run_injection_campaign(cfg5), std::invalid_argument);
  // rhs_vector and any are format-agnostic.
  auto cfg3 = small_config(ecc::Scheme::secded64, Target::rhs_vector,
                           FaultModel::single_flip, 1);
  cfg3.format = MatrixFormat::ell;
  cfg3.trials = 5;
  EXPECT_NO_THROW((void)run_injection_campaign(cfg3));
  auto cfg6 = small_config(ecc::Scheme::secded64, Target::rhs_vector,
                           FaultModel::single_flip, 1);
  cfg6.format = MatrixFormat::sell;
  cfg6.trials = 5;
  EXPECT_NO_THROW((void)run_injection_campaign(cfg6));
}

TEST(TargetNames, CoverEveryTarget) {
  for (auto t : {Target::csr_values, Target::csr_cols, Target::csr_row_ptr,
                 Target::rhs_vector, Target::any, Target::ell_values, Target::ell_cols,
                 Target::ell_row_width, Target::sell_values, Target::sell_cols,
                 Target::sell_structure}) {
    EXPECT_STRNE(to_string(t), "?");
  }
  EXPECT_STREQ(to_string(Target::ell_values), "ell_values");
  EXPECT_STREQ(to_string(Target::ell_cols), "ell_cols");
  EXPECT_STREQ(to_string(Target::ell_row_width), "ell_row_width");
  EXPECT_STREQ(to_string(Target::sell_values), "sell_values");
  EXPECT_STREQ(to_string(Target::sell_cols), "sell_cols");
  EXPECT_STREQ(to_string(Target::sell_structure), "sell_structure");
}

}  // namespace
