// The solve service layer: percentile contract, deadline-aware batch pops,
// batch sequence numbers, the ordered-commit discipline, and — the core
// promise of the worker fleet — bit-identical results, per-tenant logs and
// shared matrix log at 1, 2 and 4 workers, clean and under injected faults.
//
// Everything here runs on raw std::threads (no OpenMP pragmas of its own),
// so the whole binary is TSan-compatible: the CI thread-sanitizer job runs
// it alongside the ThreadStress suites of test_thread_determinism.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <limits>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "abft/abft.hpp"
#include "common/fault_log.hpp"
#include "obs/metrics.hpp"
#include "service/batch_queue.hpp"
#include "service/worker_pool.hpp"
#include "solvers/solvers.hpp"
#include "sparse/generators.hpp"
#include "sparse/transform.hpp"

namespace {

using namespace abft;
using namespace std::chrono_literals;

// ---------------------------------------------------------------------------
// percentile(): linear interpolation between order statistics.
// ---------------------------------------------------------------------------

TEST(Percentile, EmptySampleIsZero) {
  EXPECT_EQ(service::percentile({}, 50.0), 0.0);
}

TEST(Percentile, SingleSampleIsThatSampleAtEveryQuantile) {
  for (const double q : {0.0, 25.0, 50.0, 99.0, 100.0}) {
    EXPECT_EQ(service::percentile({7.5}, q), 7.5) << "q=" << q;
  }
}

TEST(Percentile, ExtremesAreMinAndMax) {
  const std::vector<double> sample{9.0, 1.0, 5.0, 3.0};
  EXPECT_EQ(service::percentile(sample, 0.0), 1.0);
  EXPECT_EQ(service::percentile(sample, 100.0), 9.0);
}

TEST(Percentile, TwoSamplesInterpolateLinearly) {
  // The documented contract: interpolation, not nearest-rank.
  EXPECT_DOUBLE_EQ(service::percentile({1.0, 2.0}, 50.0), 1.5);
  EXPECT_DOUBLE_EQ(service::percentile({1.0, 2.0}, 25.0), 1.25);
  EXPECT_DOUBLE_EQ(service::percentile({1.0, 2.0}, 75.0), 1.75);
}

TEST(Percentile, OutOfRangeQuantilesClampToExtremes) {
  const std::vector<double> sample{2.0, 4.0, 8.0};
  EXPECT_EQ(service::percentile(sample, -10.0), 2.0);
  EXPECT_EQ(service::percentile(sample, 250.0), 8.0);
}

// ---------------------------------------------------------------------------
// pop_batch sequence numbers and pop_batch_until (deadline-aware batching).
// ---------------------------------------------------------------------------

TEST(BatchQueue, SequenceNumbersCountPopsInOrder) {
  service::BatchQueue<int> queue(16);
  for (int i = 0; i < 7; ++i) ASSERT_TRUE(queue.push(i));
  std::uint64_t seq = 99;
  auto b0 = queue.pop_batch(3, &seq);
  EXPECT_EQ(seq, 0u);
  EXPECT_EQ(b0, (std::vector<int>{0, 1, 2}));
  auto b1 = queue.pop_batch(3, &seq);
  EXPECT_EQ(seq, 1u);
  EXPECT_EQ(b1, (std::vector<int>{3, 4, 5}));
  // Deadline pops share the same counter.
  auto b2 = queue.pop_batch_until(
      3, 0ms, [](int) { return std::chrono::steady_clock::now(); }, &seq);
  EXPECT_EQ(seq, 2u);
  EXPECT_EQ(b2, (std::vector<int>{6}));
  // An empty (closed) pop leaves seq_out untouched.
  queue.close();
  seq = 1234;
  EXPECT_TRUE(queue.pop_batch(3, &seq).empty());
  EXPECT_EQ(seq, 1234u);
}

TEST(BatchQueueDeadline, FullBacklogPopsImmediately) {
  service::BatchQueue<int> queue(16);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(queue.push(i));
  // A generous budget must not delay a batch that is already full.
  const auto t0 = std::chrono::steady_clock::now();
  const auto batch = queue.pop_batch_until(
      4, 10s, [](int) { return std::chrono::steady_clock::now(); });
  EXPECT_EQ(batch.size(), 4u);
  EXPECT_LT(std::chrono::steady_clock::now() - t0, 5s);
}

TEST(BatchQueueDeadline, ExpiredBudgetClosesThePartialBatchEarly) {
  service::BatchQueue<int> queue(16);
  ASSERT_TRUE(queue.push(1));
  ASSERT_TRUE(queue.push(2));
  // The oldest request "arrived" an hour ago: its budget is blown, so the
  // pop must return the partial batch instead of waiting to fill 4.
  const auto long_ago = std::chrono::steady_clock::now() - 1h;
  const auto batch =
      queue.pop_batch_until(4, 1ms, [&](int) { return long_ago; });
  EXPECT_EQ(batch.size(), 2u);
}

TEST(BatchQueueDeadline, WaitsForTheBatchToFillWithinBudget) {
  service::BatchQueue<int> queue(16);
  ASSERT_TRUE(queue.push(1));
  std::thread producer([&] {
    std::this_thread::sleep_for(20ms);
    ASSERT_TRUE(queue.push(2));
    ASSERT_TRUE(queue.push(3));
  });
  // Budget far beyond the producer delay: the pop should pick up the late
  // arrivals instead of returning the lone first request.
  const auto batch = queue.pop_batch_until(
      3, 60s, [](int) { return std::chrono::steady_clock::now(); });
  producer.join();
  EXPECT_EQ(batch.size(), 3u);
}

TEST(BatchQueueDeadline, CloseDuringTheWaitDrainsWhatIsQueued) {
  service::BatchQueue<int> queue(16);
  ASSERT_TRUE(queue.push(42));
  std::thread closer([&] {
    std::this_thread::sleep_for(20ms);
    queue.close();
  });
  const auto batch = queue.pop_batch_until(
      4, 60s, [](int) { return std::chrono::steady_clock::now(); });
  closer.join();
  EXPECT_EQ(batch, (std::vector<int>{42}));
  EXPECT_TRUE(queue.pop_batch_until(4, 60s, [](int) {
                     return std::chrono::steady_clock::now();
                   }).empty());
}

// ---------------------------------------------------------------------------
// Raw-std::thread stress (the TSan job's quarry).
// ---------------------------------------------------------------------------

constexpr int kStressThreads = 8;

TEST(ThreadStress, CloseUnblocksPushersOnAFullQueue) {
  for (int rep = 0; rep < 20; ++rep) {
    service::BatchQueue<int> queue(2);
    ASSERT_TRUE(queue.push(0));
    ASSERT_TRUE(queue.push(1));
    std::atomic<int> rejected{0};
    std::vector<std::thread> pushers;
    for (int t = 0; t < kStressThreads; ++t) {
      pushers.emplace_back([&] {
        // The queue is full: this blocks until close(), then must return
        // false — not deadlock, not silently "succeed".
        if (!queue.push(99)) rejected.fetch_add(1, std::memory_order_relaxed);
      });
    }
    std::this_thread::sleep_for(1ms);
    queue.close();
    for (auto& t : pushers) t.join();
    EXPECT_EQ(rejected.load(), kStressThreads) << "rep " << rep;
    // The two pre-close items are still there for draining.
    EXPECT_EQ(queue.pop_batch(8).size(), 2u);
  }
}

TEST(ThreadStress, SequenceNumbersAreUniqueAndFifoUnderConcurrentPops) {
  constexpr std::size_t kTotal = 4000;
  for (int rep = 0; rep < 5; ++rep) {
    service::BatchQueue<std::size_t> queue(kTotal);
    for (std::size_t i = 0; i < kTotal; ++i) ASSERT_TRUE(queue.push(i));
    queue.close();

    struct TaggedBatch {
      std::uint64_t seq;
      std::vector<std::size_t> items;
    };
    std::mutex mu;
    std::vector<TaggedBatch> batches;
    std::vector<std::thread> consumers;
    for (int c = 0; c < kStressThreads; ++c) {
      consumers.emplace_back([&] {
        while (true) {
          std::uint64_t seq = 0;
          auto batch = queue.pop_batch(7, &seq);
          if (batch.empty()) break;
          std::lock_guard lock(mu);
          batches.push_back({seq, std::move(batch)});
        }
      });
    }
    for (auto& t : consumers) t.join();

    // Sorting batches by sequence number must reconstruct the exact FIFO
    // stream: sequence numbers are dense, unique, and ordered like the
    // items they carry.
    std::sort(batches.begin(), batches.end(),
              [](const TaggedBatch& a, const TaggedBatch& b) {
                return a.seq < b.seq;
              });
    std::size_t expected = 0;
    for (std::size_t s = 0; s < batches.size(); ++s) {
      ASSERT_EQ(batches[s].seq, s) << "rep " << rep;
      for (const std::size_t item : batches[s].items) {
        ASSERT_EQ(item, expected) << "rep " << rep;
        ++expected;
      }
    }
    ASSERT_EQ(expected, kTotal) << "rep " << rep;
  }
}

TEST(ThreadStress, OrderedCommitterReplaysCommitsInSequenceOrder) {
  constexpr std::uint64_t kSeqs = 96;
  for (int rep = 0; rep < 20; ++rep) {
    service::OrderedCommitter committer;
    std::vector<std::uint64_t> order;  // guarded by the committer itself
    std::vector<std::thread> workers;
    for (int t = 0; t < kStressThreads; ++t) {
      workers.emplace_back([&, t] {
        // Thread t owns seqs t, t+8, t+16, ... and commits them ascending —
        // the same at-most-one-uncommitted-seq-per-thread shape WorkerPool
        // guarantees.
        for (std::uint64_t s = static_cast<std::uint64_t>(t); s < kSeqs;
             s += kStressThreads) {
          committer.commit(s, [&] { order.push_back(s); });
        }
      });
    }
    for (auto& t : workers) t.join();
    ASSERT_EQ(order.size(), kSeqs) << "rep " << rep;
    for (std::uint64_t s = 0; s < kSeqs; ++s) {
      ASSERT_EQ(order[s], s) << "rep " << rep;
    }
    EXPECT_EQ(committer.next(), kSeqs);
  }
}

TEST(ThreadStress, WorkerPoolDeliversEveryBatchOnceAndCommitsInOrder) {
  constexpr std::size_t kTotal = 1000;
  for (int rep = 0; rep < 10; ++rep) {
    service::BatchQueue<std::size_t> queue(kTotal);
    for (std::size_t i = 0; i < kTotal; ++i) ASSERT_TRUE(queue.push(i));
    queue.close();

    std::vector<std::uint64_t> commit_order;
    std::vector<int> seen(kTotal, 0);
    service::WorkerPool pool(
        kStressThreads,
        [&](std::uint64_t* seq) { return queue.pop_batch(3, seq); },
        [](std::uint64_t, std::vector<std::size_t>& batch) {
          return batch.size();  // stand-in for a solve
        },
        [&](std::uint64_t seq, std::vector<std::size_t>& batch,
            std::size_t& solved) {
          // Runs under the OrderedCommitter: no extra locking needed.
          EXPECT_EQ(solved, batch.size());
          commit_order.push_back(seq);
          for (const std::size_t item : batch) ++seen[item];
        });
    pool.join();

    ASSERT_EQ(commit_order.size(), (kTotal + 2) / 3) << "rep " << rep;
    for (std::size_t s = 0; s < commit_order.size(); ++s) {
      ASSERT_EQ(commit_order[s], s) << "rep " << rep;
    }
    for (std::size_t i = 0; i < kTotal; ++i) {
      ASSERT_EQ(seen[i], 1) << "item " << i << " rep " << rep;
    }
  }
}

TEST(WorkerPool, JoinRethrowsTheFirstWorkerException) {
  service::BatchQueue<int> queue(16);
  for (int i = 0; i < 12; ++i) ASSERT_TRUE(queue.push(i));
  queue.close();
  std::atomic<std::size_t> committed{0};
  service::WorkerPool pool(
      2, [&](std::uint64_t* seq) { return queue.pop_batch(1, seq); },
      [](std::uint64_t seq, std::vector<int>&) {
        if (seq == 3) throw std::runtime_error("solver died");
        return 0;
      },
      [&](std::uint64_t, std::vector<int>&, int&) {
        committed.fetch_add(1, std::memory_order_relaxed);
      });
  EXPECT_THROW(pool.join(), std::runtime_error);
  // The failed batch's sequence number still advanced, so the surviving
  // worker drained everything behind it instead of deadlocking.
  EXPECT_GE(committed.load(), 12u - 2u);
}

// ---------------------------------------------------------------------------
// MatrixLogView: rerouted accounting over a shared container.
// ---------------------------------------------------------------------------

using Pm32 = ProtectedCsr<std::uint32_t, ElemCrc32c, RowCrc32c>;

TEST(MatrixLogView, RoutesKernelAndVerifyEventsToTheViewLog) {
  const auto plain = sparse::pad_rows_to_min_nnz(sparse::laplacian_2d(8, 8),
                                                 ElemCrc32c::kMinRowNnz);
  FaultLog container_log, view_log;
  auto pm = Pm32::from_plain(plain, &container_log, DuePolicy::record_only);
  service::MatrixLogView<Pm32> view(pm, &view_log, DuePolicy::record_only);
  EXPECT_EQ(view.nrows(), pm.nrows());
  EXPECT_EQ(view.ncols(), pm.ncols());

  ProtectedVector<VecNone> x(plain.ncols()), y(plain.nrows());
  std::vector<double> ones(plain.ncols(), 1.0);
  x.assign({ones.data(), ones.size()});
  spmv(view, x, y, CheckMode::full);
  (void)view.verify_all();

  EXPECT_GT(view_log.checks(), 0u);
  EXPECT_EQ(container_log.checks(), 0u)
      << "kernels through the view must never touch the container's own log";
}

// ---------------------------------------------------------------------------
// Fleet determinism: the tentpole contract. For a fixed request set, the
// per-request solution bits, per-tenant logs, and the shared matrix log are
// identical at 1, 2 and 4 workers — clean, with a tenant-vector fault, and
// with an uncorrectable matrix fault.
// ---------------------------------------------------------------------------

/// Snapshot of a FaultLog's observable state.
struct LogState {
  std::uint64_t checks = 0;
  std::uint64_t corrected = 0;
  std::uint64_t uncorrectable = 0;
  std::uint64_t bounds = 0;
  std::vector<FaultEvent> events;

  static LogState of(const FaultLog& log) {
    return {log.checks(), log.corrected(), log.uncorrectable(),
            log.bounds_violations(), log.events()};
  }
};

void expect_same_log(const LogState& got, const LogState& want, const char* what) {
  EXPECT_EQ(got.checks, want.checks) << what;
  EXPECT_EQ(got.corrected, want.corrected) << what;
  EXPECT_EQ(got.uncorrectable, want.uncorrectable) << what;
  EXPECT_EQ(got.bounds, want.bounds) << what;
  ASSERT_EQ(got.events.size(), want.events.size()) << what;
  for (std::size_t i = 0; i < got.events.size(); ++i) {
    EXPECT_EQ(got.events[i].region, want.events[i].region) << what << " event " << i;
    EXPECT_EQ(got.events[i].outcome, want.events[i].outcome) << what << " event " << i;
    EXPECT_EQ(got.events[i].index, want.events[i].index) << what << " event " << i;
  }
}

enum class FleetFault {
  none,          ///< clean run
  tenant_vector, ///< one bit in request 3's b column (VecCrc32c corrects it)
  matrix_due,    ///< one matrix value bit under detect-only SED (stays dirty)
};

/// Everything observable from one fleet run.
struct FleetRun {
  std::vector<std::vector<std::uint64_t>> ubits;  ///< per request, solution bits
  std::vector<LogState> tenant_logs;              ///< per request
  std::vector<unsigned> iterations;               ///< per request
  std::vector<bool> converged, breakdown;         ///< per request
  LogState matrix_log;                            ///< the shared, ordered log
  /// Per batch (by sequence number), the adaptive controller's trajectory
  /// and check count — empty unless the adaptive leg is on.
  std::vector<std::vector<AdaptiveCheckPolicy::IntervalChange>> trajectories;
  std::vector<std::uint64_t> full_checks;
};

struct FleetRequest {
  std::size_t id = 0;
  FaultLog log;
};

/// Run a fixed request set through the fleet at \p nworkers. All requests
/// are pre-enqueued and the queue closed before the pool starts, so batch
/// composition is pinned to [s*k, (s+1)*k) — the determinism contract is
/// about *worker scheduling*, not about racing producers into the queue.
template <class PM>
FleetRun run_fleet(std::size_t nworkers, FleetFault fault, bool adaptive = false) {
  constexpr std::size_t kTotal = 14;
  constexpr std::size_t kBatch = 4;
  constexpr std::size_t kBatches = (kTotal + kBatch - 1) / kBatch;
  constexpr std::size_t kFaultTenant = 3;
  using ES = typename PM::elem_scheme;

  const auto plain = sparse::pad_rows_to_min_nnz(
      sparse::laplacian_2d(12, 12), std::max<std::size_t>(ES::kMinRowNnz, 1));
  const std::size_t n = plain.nrows();
  FaultLog shared_mlog;
  auto pm = PM::from_plain(plain, nullptr, DuePolicy::record_only);
  if (fault == FleetFault::matrix_due) {
    // Flip a low mantissa bit of one stored value: detect-only schemes
    // (SED) report it as uncorrectable on every pass and never repair it,
    // which is exactly what makes the fault leg deterministic.
    auto vals = pm.raw_values();
    reinterpret_cast<std::uint64_t&>(vals[vals.size() / 2]) ^= 1ull << 3;
  }

  std::deque<FleetRequest> requests(kTotal);
  service::BatchQueue<FleetRequest*> queue(kTotal);
  for (std::size_t i = 0; i < kTotal; ++i) {
    requests[i].id = i;
    EXPECT_TRUE(queue.push(&requests[i])) << "pre-enqueue";
  }
  queue.close();

  solvers::SolveOptions opts;
  opts.tolerance = 0.0;  // fixed work: every column runs max_iterations
  opts.max_iterations = 5;
  opts.final_matrix_verify = false;  // runs in the ordered commit instead

  FleetRun run;
  run.ubits.resize(kTotal);
  run.iterations.resize(kTotal);
  run.converged.resize(kTotal);
  run.breakdown.resize(kTotal);
  run.trajectories.resize(kBatches);
  run.full_checks.resize(kBatches, 0);

  struct Outcome {
    std::unique_ptr<FaultLog> mlog;
    std::vector<solvers::SolveResult> results;
    std::vector<std::vector<std::uint64_t>> ubits;
    std::vector<AdaptiveCheckPolicy::IntervalChange> trajectory;
    std::uint64_t full_checks = 0;
  };
  service::WorkerPool pool(
      nworkers,
      [&](std::uint64_t* seq) { return queue.pop_batch(kBatch, seq); },
      [&](std::uint64_t, std::vector<FleetRequest*>& batch) {
        Outcome out;
        out.mlog = std::make_unique<FaultLog>();
        service::MatrixLogView<PM> view(pm, out.mlog.get(),
                                        DuePolicy::record_only);
        ProtectedMultiVector<VecCrc32c> b(n), u(n);
        std::vector<double> rhs(n);
        for (FleetRequest* req : batch) {
          auto& bj = b.add_column(&req->log, DuePolicy::record_only);
          u.add_column(&req->log, DuePolicy::record_only);
          for (std::size_t i = 0; i < n; ++i) {
            rhs[i] = static_cast<double>((req->id + 1) * (i % 7 + 1));
          }
          bj.assign({rhs.data(), rhs.size()});
          if (fault == FleetFault::tenant_vector && req->id == kFaultTenant) {
            // One bit in this tenant's b storage: VecCrc32c detects and
            // corrects it on first decode, logged to this tenant alone.
            reinterpret_cast<std::uint64_t&>(bj.raw()[1]) ^= 1ull << 44;
          }
        }
        // Each concurrent batch solve gets its own fresh controller: the
        // policy carries per-solve state, so sharing one instance across
        // workers would race (and break the once-per-iteration contract).
        AdaptiveCheckPolicy controller;
        auto batch_opts = opts;
        if (adaptive) batch_opts.adaptive_policy = &controller;
        out.results = solvers::cg_solve_batch(view, b, u, batch_opts);
        if (adaptive) {
          out.trajectory = controller.trajectory();
          out.full_checks = controller.full_checks();
        }
        out.ubits.resize(batch.size());
        std::vector<double> got(n, 0.0);
        for (std::size_t j = 0; j < batch.size(); ++j) {
          u.column(j).extract({got.data(), got.size()});
          out.ubits[j].resize(n);
          for (std::size_t i = 0; i < n; ++i) {
            out.ubits[j][i] = std::bit_cast<std::uint64_t>(got[i]);
          }
        }
        return out;
      },
      [&](std::uint64_t seq, std::vector<FleetRequest*>& batch, Outcome& out) {
        service::MatrixLogView<PM> view(pm, out.mlog.get(),
                                        DuePolicy::record_only);
        (void)view.verify_all();
        shared_mlog.append_from(*out.mlog);
        run.trajectories[seq] = std::move(out.trajectory);
        run.full_checks[seq] = out.full_checks;
        for (std::size_t j = 0; j < batch.size(); ++j) {
          const std::size_t id = batch[j]->id;
          run.ubits[id] = std::move(out.ubits[j]);
          run.iterations[id] = out.results[j].iterations;
          run.converged[id] = out.results[j].converged;
          run.breakdown[id] = out.results[j].breakdown;
        }
      });
  pool.join();

  run.tenant_logs.reserve(kTotal);
  for (const auto& req : requests) run.tenant_logs.push_back(LogState::of(req.log));
  run.matrix_log = LogState::of(shared_mlog);
  return run;
}

template <class PM>
void expect_fleet_determinism(FleetFault fault, const char* what,
                              bool adaptive = false) {
  const auto reference = run_fleet<PM>(1, fault, adaptive);
  // Sanity: the matrix log actually carries traffic (checks per batch pass).
  ASSERT_GT(reference.matrix_log.checks, 0u) << what;
  if (fault == FleetFault::matrix_due) {
    ASSERT_GT(reference.matrix_log.uncorrectable, 0u) << what;
  }
  if (fault == FleetFault::tenant_vector) {
    ASSERT_GT(reference.tenant_logs[3].corrected, 0u) << what;
    // Fault isolation: no other tenant saw a correction.
    for (std::size_t i = 0; i < reference.tenant_logs.size(); ++i) {
      if (i != 3) EXPECT_EQ(reference.tenant_logs[i].corrected, 0u) << what;
    }
  }
  if (adaptive) {
    // The controller must have decided something per batch, and a faulty
    // matrix must have pinned at least one batch's cadence to the floor.
    for (const auto& t : reference.trajectories) ASSERT_FALSE(t.empty()) << what;
  }
  for (const std::size_t w : {std::size_t{2}, std::size_t{4}}) {
    const auto got = run_fleet<PM>(w, fault, adaptive);
    for (std::size_t id = 0; id < reference.ubits.size(); ++id) {
      ASSERT_EQ(got.ubits[id], reference.ubits[id])
          << what << ": solution bits, request " << id << " at " << w
          << " workers";
      EXPECT_EQ(got.iterations[id], reference.iterations[id]) << what;
      EXPECT_EQ(got.converged[id], reference.converged[id]) << what;
      EXPECT_EQ(got.breakdown[id], reference.breakdown[id]) << what;
      expect_same_log(got.tenant_logs[id], reference.tenant_logs[id], what);
    }
    expect_same_log(got.matrix_log, reference.matrix_log, what);
    ASSERT_EQ(got.full_checks, reference.full_checks)
        << what << ": adaptive check counts at " << w << " workers";
    ASSERT_EQ(got.trajectories.size(), reference.trajectories.size()) << what;
    for (std::size_t s = 0; s < got.trajectories.size(); ++s) {
      ASSERT_TRUE(got.trajectories[s] == reference.trajectories[s])
          << what << ": batch " << s << " interval trajectory at " << w
          << " workers";
    }
  }
}

TEST(ThreadStress, FleetIsWorkerCountInvariantClean) {
  expect_fleet_determinism<Pm32>(FleetFault::none, "clean");
}

TEST(ThreadStress, FleetIsWorkerCountInvariantWithTenantVectorFault) {
  expect_fleet_determinism<Pm32>(FleetFault::tenant_vector, "tenant fault");
}

TEST(ThreadStress, FleetIsWorkerCountInvariantWithUncorrectableMatrixFault) {
  // Detect-only SED elements: the flipped bit is reported on every full
  // pass and never repaired, so the shared log's event stream is a pure
  // function of the request set — at any worker count.
  using PmSed = ProtectedCsr<std::uint32_t, ElemSed, RowSed>;
  expect_fleet_determinism<PmSed>(FleetFault::matrix_due, "matrix DUE");
}

TEST(ThreadStress, FleetIsWorkerCountInvariantWithAdaptiveController) {
  // Adaptive cadence in the fleet: one fresh controller per batch solve, fed
  // only by that batch's committed per-solve logs — so each batch's interval
  // trajectory, the check counts, and every solution bit are identical at 1,
  // 2 and 4 workers, clean and with an uncorrectable matrix fault pinning
  // the cadence.
  expect_fleet_determinism<Pm32>(FleetFault::none, "adaptive clean",
                                 /*adaptive=*/true);
  using PmSed = ProtectedCsr<std::uint32_t, ElemSed, RowSed>;
  expect_fleet_determinism<PmSed>(FleetFault::matrix_due, "adaptive matrix DUE",
                                  /*adaptive=*/true);
}

// ---------------------------------------------------------------------------
// Observability legs: the metrics layer rides the FaultLog commit points, so
// (a) flipping the runtime obs switch moves no solver observable at any
// worker count, and (b) the registry's counter deltas across a fleet run
// agree exactly with the FaultLog totals the run produced — two independent
// accounting paths over the same events.
// ---------------------------------------------------------------------------

void expect_same_fleet_run(const FleetRun& got, const FleetRun& want,
                           const char* what) {
  for (std::size_t id = 0; id < want.ubits.size(); ++id) {
    ASSERT_EQ(got.ubits[id], want.ubits[id]) << what << " request " << id;
    EXPECT_EQ(got.iterations[id], want.iterations[id]) << what;
    EXPECT_EQ(got.converged[id], want.converged[id]) << what;
    EXPECT_EQ(got.breakdown[id], want.breakdown[id]) << what;
    expect_same_log(got.tenant_logs[id], want.tenant_logs[id], what);
  }
  expect_same_log(got.matrix_log, want.matrix_log, what);
}

TEST(ThreadStress, FleetBitIdenticalWithObsOnAndOff) {
  struct ObsGuard {
    ~ObsGuard() { obs::set_enabled(true); }
  } guard;
  obs::set_enabled(true);
  const auto reference = run_fleet<Pm32>(1, FleetFault::tenant_vector);
  for (const std::size_t w : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    for (const bool on : {true, false}) {
      obs::set_enabled(on);
      const auto got = run_fleet<Pm32>(w, FleetFault::tenant_vector);
      expect_same_fleet_run(got, reference,
                            on ? "obs on fleet" : "obs off fleet");
    }
  }
}

#if ABFT_OBS_ENABLED
TEST(ThreadStress, FleetMetricsDeltaMatchesFaultLogTotals) {
  obs::set_enabled(true);
  for (const std::size_t w : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    const auto before = obs::MetricsRegistry::global().snapshot();
    const auto run = run_fleet<Pm32>(w, FleetFault::tenant_vector);
    const auto after = obs::MetricsRegistry::global().snapshot();

    std::uint64_t checks = run.matrix_log.checks;
    std::uint64_t corrected = run.matrix_log.corrected;
    std::uint64_t uncorrectable = run.matrix_log.uncorrectable;
    for (const auto& t : run.tenant_logs) {
      checks += t.checks;
      corrected += t.corrected;
      uncorrectable += t.uncorrectable;
    }
    ASSERT_GT(checks, 0u);
    ASSERT_GT(corrected, 0u);  // the tenant-vector fault leg corrects one bit
    EXPECT_EQ(after.counter("abft_checks_total") -
                  before.counter("abft_checks_total"),
              checks)
        << w << " workers";
    EXPECT_EQ(after.counter("abft_corrected_total") -
                  before.counter("abft_corrected_total"),
              corrected)
        << w << " workers";
    EXPECT_EQ(after.counter("abft_uncorrectable_total") -
                  before.counter("abft_uncorrectable_total"),
              uncorrectable)
        << w << " workers";
    // The fleet's queue telemetry fired too: every batch pop is counted.
    EXPECT_GT(after.counter("abft_queue_batches_total"),
              before.counter("abft_queue_batches_total"))
        << w << " workers";
  }
}
#endif  // ABFT_OBS_ENABLED

// ---------------------------------------------------------------------------
// SolveResult::breakdown: CG breakdown is distinguishable from exhaustion.
// ---------------------------------------------------------------------------

TEST(Breakdown, ZeroOperatorBreaksDownInsteadOfExhausting) {
  // A u = b with A == 0: the first curvature p'Ap is exactly zero.
  auto zero = sparse::laplacian_2d(3, 3);
  for (auto& v : zero.values()) v = 0.0;
  auto pm = ProtectedCsr<std::uint32_t, ElemNone, RowNone>::from_plain(zero);
  ProtectedVector<VecNone> b(zero.nrows()), u(zero.nrows());
  std::vector<double> rhs(zero.nrows(), 1.0);
  b.assign({rhs.data(), rhs.size()});
  const auto result = solvers::cg_solve(pm, b, u);
  EXPECT_FALSE(result.converged);
  EXPECT_TRUE(result.breakdown);
}

TEST(Breakdown, ExhaustionLeavesBreakdownFalse) {
  const auto plain = sparse::pad_rows_to_min_nnz(sparse::laplacian_2d(8, 8),
                                                 ElemCrc32c::kMinRowNnz);
  auto pm = Pm32::from_plain(plain);
  ProtectedVector<VecNone> b(plain.nrows()), u(plain.nrows());
  std::vector<double> rhs(plain.nrows(), 1.0);
  b.assign({rhs.data(), rhs.size()});
  solvers::SolveOptions opts;
  opts.tolerance = 0.0;  // unreachable: runs out of iterations
  opts.max_iterations = 3;
  const auto result = solvers::cg_solve(pm, b, u, opts);
  EXPECT_FALSE(result.converged);
  EXPECT_FALSE(result.breakdown);
  EXPECT_EQ(result.iterations, 3u);
}

TEST(Breakdown, BatchFlagsOnlyThePoisonedColumn) {
  const auto plain = sparse::pad_rows_to_min_nnz(sparse::laplacian_2d(8, 8),
                                                 ElemCrc32c::kMinRowNnz);
  const std::size_t n = plain.nrows();
  auto pm = Pm32::from_plain(plain);
  ProtectedMultiVector<VecNone> b(n), u(n);
  for (std::size_t j = 0; j < 3; ++j) {
    auto& bj = b.add_column();
    u.add_column();
    std::vector<double> rhs(n, static_cast<double>(j + 1));
    if (j == 1) rhs[0] = std::numeric_limits<double>::quiet_NaN();
    bj.assign({rhs.data(), rhs.size()});
  }
  const auto results = solvers::cg_solve_batch(pm, b, u);
  EXPECT_TRUE(results[0].converged);
  EXPECT_FALSE(results[0].breakdown);
  EXPECT_TRUE(results[1].breakdown) << "NaN rhs must read as breakdown";
  EXPECT_FALSE(results[1].converged);
  EXPECT_TRUE(results[2].converged);
  EXPECT_FALSE(results[2].breakdown);
}

}  // namespace
