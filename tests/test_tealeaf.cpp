// TeaLeaf miniapp: deck parsing, initial states, per-step assembly and the
// timestep driver across protection schemes (paper §V).
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "tealeaf/deck.hpp"
#include "tealeaf/driver.hpp"
#include "tealeaf/problem.hpp"

namespace {

using namespace abft;
using namespace abft::tealeaf;

constexpr const char* kPaperStyleDeck = R"(*tea
state 1 density=100.0 energy=0.0001
state 2 density=0.1 energy=25.0 geometry=rectangle xmin=0.0 xmax=1.0 ymin=1.0 ymax=2.0
state 3 density=0.1 energy=0.1 geometry=circle radius=1.0 centrex=7.0 centrey=7.0
x_cells=16
y_cells=16
xmin=0.0
xmax=10.0
ymin=0.0
ymax=10.0
initial_timestep=0.004
end_step=3
tl_max_iters=2000
tl_use_cg
tl_eps=1e-12
*endtea
)";

TEST(Deck, ParsesPaperStyleInput) {
  const auto cfg = parse_deck_string(kPaperStyleDeck);
  EXPECT_EQ(cfg.mesh.nx, 16u);
  EXPECT_EQ(cfg.mesh.ny, 16u);
  EXPECT_EQ(cfg.mesh.xmax, 10.0);
  EXPECT_EQ(cfg.initial_timestep, 0.004);
  EXPECT_EQ(cfg.end_step, 3u);
  EXPECT_EQ(cfg.tl_eps, 1e-12);
  EXPECT_EQ(cfg.tl_max_iters, 2000u);
  EXPECT_EQ(cfg.solver, SolverKind::cg);
  ASSERT_EQ(cfg.states.size(), 3u);
  EXPECT_EQ(cfg.states[0].density, 100.0);
  EXPECT_EQ(cfg.states[1].geometry, Geometry::rectangle);
  EXPECT_EQ(cfg.states[1].ymax, 2.0);
  EXPECT_EQ(cfg.states[2].geometry, Geometry::circle);
  EXPECT_EQ(cfg.states[2].radius, 1.0);
  EXPECT_EQ(cfg.states[2].cx, 7.0);
}

TEST(Deck, CommentsAndUnknownKeysIgnored) {
  const auto cfg = parse_deck_string(
      "x_cells=8 ! trailing comment\n"
      "# full-line comment\n"
      "y_cells=4\n"
      "mystery_key=42\n"
      "tl_use_jacobi\n");
  EXPECT_EQ(cfg.mesh.nx, 8u);
  EXPECT_EQ(cfg.mesh.ny, 4u);
  EXPECT_EQ(cfg.solver, SolverKind::jacobi);
}

TEST(Deck, SolverSelectionFlags) {
  EXPECT_EQ(parse_deck_string("x_cells=4\ny_cells=4\ntl_use_chebyshev\n").solver,
            SolverKind::chebyshev);
  EXPECT_EQ(parse_deck_string("x_cells=4\ny_cells=4\ntl_use_ppcg\n").solver,
            SolverKind::ppcg);
}

TEST(Deck, BadNumbersAndMissingCellsThrow) {
  EXPECT_THROW((void)parse_deck_string("x_cells=abc\ny_cells=4\n"), std::runtime_error);
  EXPECT_THROW((void)parse_deck_string("initial_timestep=0.1\n"), std::runtime_error);
  EXPECT_THROW((void)parse_deck_string("x_cells=4\ny_cells=4\nstate 0 density=1\n"),
               std::runtime_error);
}

TEST(Problem, StatesApplyInOrder) {
  const auto cfg = parse_deck_string(kPaperStyleDeck);
  Problem p(cfg);
  const auto& mesh = p.mesh();
  // Ambient cell far from both regions.
  const auto far_cell = mesh.index(15, 0);
  EXPECT_EQ(p.density()[far_cell], 100.0);
  EXPECT_EQ(p.energy()[far_cell], 0.0001);
  // Inside the rectangle (x in [0,1), y in [1,2)): cell (0, 2) has centre
  // (0.3125, 1.5625).
  const auto rect_cell = mesh.index(0, 2);
  EXPECT_EQ(p.density()[rect_cell], 0.1);
  EXPECT_EQ(p.energy()[rect_cell], 25.0);
  // Inside the circle at (7,7): nearest cell centre.
  const auto circ_cell = mesh.index(11, 11);  // centre (7.1875, 7.1875)
  EXPECT_EQ(p.density()[circ_cell], 0.1);
  EXPECT_EQ(p.energy()[circ_cell], 0.1);
  // u = energy * density everywhere.
  for (std::size_t c = 0; c < mesh.cells(); ++c) {
    EXPECT_EQ(p.u()[c], p.energy()[c] * p.density()[c]);
  }
}

TEST(Problem, AssembledMatrixIsWellFormed) {
  const auto cfg = parse_deck_string(kPaperStyleDeck);
  Problem p(cfg);
  const auto a = p.assemble_matrix();
  a.validate();
  EXPECT_EQ(a.nrows(), cfg.mesh.cells());
  // Row sums are 1: the operator conserves constants under zero-flux BCs.
  for (std::size_t r = 0; r < a.nrows(); ++r) {
    double sum = 0.0;
    for (auto k = a.row_ptr()[r]; k < a.row_ptr()[r + 1]; ++k) sum += a.values()[k];
    EXPECT_NEAR(sum, 1.0, 1e-12) << r;
  }
}

TEST(Problem, RecipCoefficientInvertsDensity) {
  auto cfg = parse_deck_string("x_cells=4\ny_cells=4\n");
  cfg.states = {State{.density = 4.0, .energy = 1.0}};
  cfg.coefficient = CoefficientMode::recip_conductivity;
  Problem p(cfg);
  const auto w = p.conductivity();
  for (double v : w) EXPECT_EQ(v, 0.25);
}

TEST(Problem, FieldSummaryIntegrals) {
  auto cfg = parse_deck_string("x_cells=4\ny_cells=4\nxmin=0 xmax=4 ymin=0 ymax=4\n");
  cfg.states = {State{.density = 2.0, .energy = 3.0}};
  Problem p(cfg);
  const auto s = p.field_summary();
  // 16 cells of 1x1: volume 16, mass 32, ie = mass*energy = 96,
  // temperature integral = volume * u = volume * (2*3) = 96.
  EXPECT_DOUBLE_EQ(s.volume, 16.0);
  EXPECT_DOUBLE_EQ(s.mass, 32.0);
  EXPECT_DOUBLE_EQ(s.internal_energy, 96.0);
  EXPECT_DOUBLE_EQ(s.temperature, 96.0);
}

TEST(Problem, FieldSummaryInternalEnergyConservedBySolve) {
  // The operator conserves sum(u); with uniform density that means the
  // internal-energy integral is conserved across timesteps.
  const auto cfg = parse_deck_string(kPaperStyleDeck);
  Simulation<ElemNone, RowNone, VecNone> sim(cfg);
  const auto before = sim.problem().field_summary();
  (void)sim.step();
  const auto after = sim.problem().field_summary();
  EXPECT_DOUBLE_EQ(after.volume, before.volume);
  EXPECT_DOUBLE_EQ(after.mass, before.mass);
  EXPECT_NEAR(after.temperature, before.temperature,
              1e-8 * std::abs(before.temperature));
}

// ---------------------------------------------------------------------------
// Full simulation runs.
// ---------------------------------------------------------------------------

TEST(Simulation, EnergyDiffusesAndTotalUIsConserved) {
  const auto cfg = parse_deck_string(kPaperStyleDeck);
  Simulation<ElemNone, RowNone, VecNone> sim(cfg);
  const auto& mesh = sim.problem().mesh();

  double total_before = 0.0;
  for (std::size_t c = 0; c < mesh.cells(); ++c) total_before += sim.problem().u()[c];

  const auto result = sim.run();
  EXPECT_TRUE(result.all_converged);
  EXPECT_EQ(result.steps.size(), 3u);
  EXPECT_GT(result.total_iterations, 0u);

  // A = I + lambda*L with zero row-sums in L^T columns => sum(u) conserved
  // up to solver tolerance (symmetric operator, zero-flux boundaries).
  double total_after = 0.0;
  for (std::size_t c = 0; c < mesh.cells(); ++c) total_after += sim.problem().u()[c];
  EXPECT_NEAR(total_after, total_before, 1e-6 * std::abs(total_before));
}

TEST(Simulation, AllSchemesAgreeOnTheField) {
  const auto cfg = parse_deck_string(kPaperStyleDeck);
  const auto baseline = run_simulation_uniform(cfg, ecc::Scheme::none);
  ASSERT_TRUE(baseline.all_converged);
  for (auto scheme : {ecc::Scheme::sed, ecc::Scheme::secded64, ecc::Scheme::secded128,
                      ecc::Scheme::crc32c}) {
    const auto run = run_simulation_uniform(cfg, scheme);
    EXPECT_TRUE(run.all_converged) << ecc::to_string(scheme);
    // Paper §VI-B: solution norm within 2e-11 % of the reference.
    EXPECT_NEAR(run.final_field_norm, baseline.final_field_norm,
                baseline.final_field_norm * 1e-9)
        << ecc::to_string(scheme);
    // And iteration counts stay within 1 % (§VI-B).
    EXPECT_LE(run.total_iterations,
              baseline.total_iterations + std::max(3u, baseline.total_iterations / 100))
        << ecc::to_string(scheme);
  }
}

TEST(Simulation, CheckIntervalProducesSameAnswer) {
  const auto cfg = parse_deck_string(kPaperStyleDeck);
  const auto every = run_simulation_uniform(cfg, ecc::Scheme::secded64, 1);
  const auto sparse_checks = run_simulation_uniform(cfg, ecc::Scheme::secded64, 16);
  EXPECT_TRUE(sparse_checks.all_converged);
  EXPECT_NEAR(every.final_field_norm, sparse_checks.final_field_norm,
              every.final_field_norm * 1e-12);
}

TEST(Simulation, AlternativeSolversReachSameField) {
  auto cfg = parse_deck_string(kPaperStyleDeck);
  cfg.end_step = 1;
  cfg.tl_eps = 1e-11;
  const auto cg = run_simulation_uniform(cfg, ecc::Scheme::none);
  ASSERT_TRUE(cg.all_converged);

  cfg.solver = SolverKind::ppcg;
  const auto ppcg = run_simulation_uniform(cfg, ecc::Scheme::none);
  EXPECT_TRUE(ppcg.all_converged);
  EXPECT_NEAR(ppcg.final_field_norm, cg.final_field_norm, cg.final_field_norm * 1e-6);

  cfg.solver = SolverKind::chebyshev;
  cfg.tl_max_iters = 20000;
  const auto cheby = run_simulation_uniform(cfg, ecc::Scheme::none);
  EXPECT_TRUE(cheby.all_converged);
  EXPECT_NEAR(cheby.final_field_norm, cg.final_field_norm, cg.final_field_norm * 1e-5);
}

TEST(Simulation, FaultLogSeesMatrixChecks) {
  const auto cfg = parse_deck_string(kPaperStyleDeck);
  FaultLog log;
  const auto run = run_simulation_uniform(cfg, ecc::Scheme::secded64, 1, &log);
  EXPECT_TRUE(run.all_converged);
  EXPECT_GT(log.checks(), 0u);
  EXPECT_EQ(log.corrected(), 0u);
  EXPECT_EQ(log.uncorrectable(), 0u);
}

}  // namespace
