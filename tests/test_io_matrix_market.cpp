// Matrix Market ingestion: round trips, format/field/symmetry coverage,
// typed line-numbered errors on malformed input, the 32->64-bit promotion
// boundary, and the checksummed-triplet protected assembly mode.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "io/io.hpp"
#include "sparse/coo.hpp"
#include "sparse/generators.hpp"

namespace {

using namespace abft;
using Kind = io::MatrixMarketError::Kind;

[[nodiscard]] std::string fixture(const char* name) {
  return std::string(ABFT_TEST_DATA_DIR) + "/" + name;
}

[[nodiscard]] io::LoadedMatrix read_str(const std::string& text,
                                        const io::ReadOptions& opts = {}) {
  std::istringstream ss(text);
  return io::read_matrix_market(ss, opts);
}

/// Assert that parsing \p text raises \p kind at \p line.
void expect_mm_error(const std::string& text, Kind kind, std::size_t line) {
  std::istringstream ss(text);
  try {
    (void)io::read_matrix_market(ss);
    FAIL() << "expected MatrixMarketError{" << io::to_string(kind) << "} on:\n" << text;
  } catch (const io::MatrixMarketError& e) {
    EXPECT_EQ(e.kind(), kind) << e.what();
    EXPECT_EQ(e.line(), line) << e.what();
    if (line > 0) {
      EXPECT_NE(std::string(e.what()).find("line " + std::to_string(line)),
                std::string::npos)
          << "message does not name the line: " << e.what();
    }
  }
}

TEST(MatrixMarket, StreamRoundTripIsExact) {
  const auto a = sparse::random_spd(25, 3, 5);
  std::stringstream ss;
  io::write_matrix_market(ss, a);
  const auto b = read_str(ss.str());
  ASSERT_EQ(b.width, IndexWidth::i32);
  EXPECT_EQ(b.a32.row_ptr(), a.row_ptr());
  EXPECT_EQ(b.a32.cols(), a.cols());
  EXPECT_EQ(b.a32.values(), a.values());
}

TEST(MatrixMarket, WideRoundTripIsExact) {
  const auto a32 = sparse::random_spd(20, 4, 9);
  const auto a = sparse::Csr64Matrix::from_csr(a32);
  std::stringstream ss;
  io::write_matrix_market(ss, a);
  const auto b = read_str(ss.str(), {.force_width = IndexWidth::i64});
  ASSERT_TRUE(b.wide());
  EXPECT_THROW((void)b.narrow(), std::logic_error);
  EXPECT_EQ(b.a64.row_ptr(), a.row_ptr());
  EXPECT_EQ(b.a64.cols(), a.cols());
  EXPECT_EQ(b.a64.values(), a.values());
}

// --- Writer: stream-state hygiene and symmetric round trips. ---

TEST(MatrixMarket, WriterRestoresCallerStreamFormatting) {
  // Regression: write_impl used to leave std::setprecision(17) on the
  // caller-provided stream.
  const auto a = sparse::laplacian_2d(4, 4);
  std::ostringstream os;
  os << std::fixed << std::setprecision(3);
  const auto flags_before = os.flags();
  io::write_matrix_market(os, a);
  EXPECT_EQ(os.flags(), flags_before);
  EXPECT_EQ(os.precision(), 3);
  os.str("");
  os << 1.23456789;
  EXPECT_EQ(os.str(), "1.235") << "caller formatting must survive the write";
}

TEST(VectorIo, StreamWriterRestoresCallerFormatting) {
  aligned_vector<double> v = {1.5, -2.25};
  std::ostringstream os;
  os << std::fixed << std::setprecision(2);
  io::write_vector(os, v);
  EXPECT_EQ(os.precision(), 2);
  os.str("");
  os << 0.123456;
  EXPECT_EQ(os.str(), "0.12");
}

TEST(MatrixMarket, SymmetricMatrixRoundTripsAsSymmetric) {
  // Regression: the writer used to re-emit every symmetric operator as
  // 'general' at ~2x the entries, dropping the symmetry declaration.
  const auto a = sparse::laplacian_2d(5, 4);  // numerically symmetric
  std::stringstream ss;
  io::write_matrix_market(ss, a);
  const std::string text = ss.str();
  EXPECT_NE(text.find("matrix coordinate real symmetric"), std::string::npos) << text;

  std::size_t lower = 0;
  for (std::size_t r = 0; r < a.nrows(); ++r) {
    for (auto k = a.row_ptr()[r]; k < a.row_ptr()[r + 1]; ++k) {
      if (a.cols()[k] <= r) ++lower;
    }
  }
  const auto b = read_str(text);
  EXPECT_EQ(b.header.symmetry, io::MmSymmetry::symmetric);
  EXPECT_EQ(b.header.entries, lower) << "only the lower triangle is stored";
  EXPECT_EQ(b.a32.row_ptr(), a.row_ptr());
  EXPECT_EQ(b.a32.cols(), a.cols());
  EXPECT_EQ(b.a32.values(), a.values());
}

TEST(MatrixMarket, AsymmetricMatrixStillWritesGeneral) {
  sparse::CooMatrix coo(3, 3);
  coo.add(0, 0, 1.0);
  coo.add(0, 2, 5.0);  // no mirror
  coo.add(1, 1, 1.0);
  coo.add(2, 2, 1.0);
  const auto a = coo.to_csr();
  std::stringstream ss;
  io::write_matrix_market(ss, a);
  EXPECT_NE(ss.str().find("matrix coordinate real general"), std::string::npos);
  const auto b = read_str(ss.str());
  EXPECT_EQ(b.a32.row_ptr(), a.row_ptr());
  EXPECT_EQ(b.a32.cols(), a.cols());
  EXPECT_EQ(b.a32.values(), a.values());
}

TEST(MatrixMarket, StructurallySymmetricButNumericallyAsymmetricWritesGeneral) {
  // A mirrored pattern with different values must NOT be folded to one
  // triangle — that would silently alter the operator.
  sparse::CooMatrix coo(2, 2);
  coo.add(0, 0, 1.0);
  coo.add(0, 1, 2.0);
  coo.add(1, 0, 3.0);
  coo.add(1, 1, 1.0);
  const auto a = coo.to_csr();
  std::stringstream ss;
  io::write_matrix_market(ss, a);
  EXPECT_NE(ss.str().find("real general"), std::string::npos);
  const auto b = read_str(ss.str());
  EXPECT_EQ(b.a32.values(), a.values());
}

TEST(MatrixMarket, SymmetricFixturesRoundTripWithDeclarationAndEntryCount) {
  // The committed symmetric fixtures must re-emit at their original stored
  // entry count (lower triangle), not the ~2x expanded 'general' form —
  // bit-exact at both widths.
  for (const char* file : {"spd_mini.mtx", "pattern_sym.mtx"}) {
    std::ifstream is(fixture(file));
    ASSERT_TRUE(is) << fixture(file);
    const auto header = io::read_mm_header(is);
    ASSERT_EQ(header.symmetry, io::MmSymmetry::symmetric) << file;

    const auto loaded = io::read_matrix_market(fixture(file));
    std::stringstream ss;
    io::write_matrix_market(ss, loaded.a32);
    const auto back = io::read_matrix_market(ss);
    EXPECT_EQ(back.header.symmetry, io::MmSymmetry::symmetric) << file;
    EXPECT_EQ(back.header.entries, header.entries)
        << file << ": the round trip must not inflate the stored entry count";
    EXPECT_EQ(back.a32.row_ptr(), loaded.a32.row_ptr()) << file;
    EXPECT_EQ(back.a32.cols(), loaded.a32.cols()) << file;
    EXPECT_EQ(back.a32.values(), loaded.a32.values()) << file;

    // The field qualifier survives too: pattern fixtures (all-ones values)
    // re-emit as 'pattern', numeric ones as 'real'.
    EXPECT_EQ(back.header.field, header.field) << file;

    // Wide stack: same declaration, same bits.
    const auto wide =
        io::read_matrix_market(fixture(file), {.force_width = IndexWidth::i64});
    std::stringstream ss64;
    io::write_matrix_market(ss64, wide.a64);
    EXPECT_NE(ss64.str().find(std::string(io::to_string(header.field)) +
                              " symmetric"),
              std::string::npos)
        << file;
    const auto back64 = io::read_matrix_market(ss64, {.force_width = IndexWidth::i64});
    EXPECT_EQ(back64.a64.row_ptr(), wide.a64.row_ptr()) << file;
    EXPECT_EQ(back64.a64.cols(), wide.a64.cols()) << file;
    EXPECT_EQ(back64.a64.values(), wide.a64.values()) << file;
  }
}

TEST(MatrixMarket, PatternInputRoundTripsAsPattern) {
  // Regression: all-ones matrices used to re-emit as 'real general' with a
  // value column of 1s; they now keep their 'pattern' declaration.
  const std::string text =
      "%%MatrixMarket matrix coordinate pattern general\n"
      "3 4 4\n"
      "1 1\n"
      "1 3\n"
      "2 4\n"
      "3 2\n";
  const auto m = read_str(text);
  std::stringstream ss;
  io::write_matrix_market(ss, m.a32);
  EXPECT_NE(ss.str().find("matrix coordinate pattern general"), std::string::npos)
      << ss.str();
  const auto back = read_str(ss.str());
  EXPECT_EQ(back.header.field, io::MmField::pattern);
  EXPECT_EQ(back.header.entries, 4u);
  EXPECT_EQ(back.a32.row_ptr(), m.a32.row_ptr());
  EXPECT_EQ(back.a32.cols(), m.a32.cols());
  EXPECT_EQ(back.a32.values(), m.a32.values());

  // Wide stack: same declaration, same bits.
  const auto wide = read_str(text, {.force_width = IndexWidth::i64});
  std::stringstream ss64;
  io::write_matrix_market(ss64, wide.a64);
  EXPECT_NE(ss64.str().find("pattern general"), std::string::npos);
  const auto back64 = read_str(ss64.str(), {.force_width = IndexWidth::i64});
  EXPECT_EQ(back64.a64.row_ptr(), wide.a64.row_ptr());
  EXPECT_EQ(back64.a64.cols(), wide.a64.cols());
  EXPECT_EQ(back64.a64.values(), wide.a64.values());
}

TEST(MatrixMarket, SkewSymmetricInputRoundTripsAsSkewSymmetric) {
  // Regression: skew inputs used to re-emit as 'real general' with both
  // signed mirrors stored; they now keep 'skew-symmetric' with only the
  // strictly-below-diagonal entries.
  const std::string text =
      "%%MatrixMarket matrix coordinate real skew-symmetric\n"
      "4 4 3\n"
      "2 1 5.0\n"
      "3 2 -1.25\n"
      "4 1 0.5\n";
  const auto m = read_str(text);
  ASSERT_EQ(m.nnz(), 6u);  // each stored entry expands to a negated mirror
  std::stringstream ss;
  io::write_matrix_market(ss, m.a32);
  EXPECT_NE(ss.str().find("matrix coordinate real skew-symmetric"),
            std::string::npos)
      << ss.str();
  const auto back = read_str(ss.str());
  EXPECT_EQ(back.header.symmetry, io::MmSymmetry::skew_symmetric);
  EXPECT_EQ(back.header.entries, 3u)
      << "only the strictly-below triangle is stored";
  EXPECT_EQ(back.a32.row_ptr(), m.a32.row_ptr());
  EXPECT_EQ(back.a32.cols(), m.a32.cols());
  EXPECT_EQ(back.a32.values(), m.a32.values());

  // Wide stack: same declaration, same bits.
  const auto wide = read_str(text, {.force_width = IndexWidth::i64});
  std::stringstream ss64;
  io::write_matrix_market(ss64, wide.a64);
  EXPECT_NE(ss64.str().find("real skew-symmetric"), std::string::npos);
  const auto back64 = read_str(ss64.str(), {.force_width = IndexWidth::i64});
  EXPECT_EQ(back64.a64.row_ptr(), wide.a64.row_ptr());
  EXPECT_EQ(back64.a64.cols(), wide.a64.cols());
  EXPECT_EQ(back64.a64.values(), wide.a64.values());
}

TEST(MatrixMarket, SkewDetectionRequiresExactNegatedMirror) {
  // A matrix with an explicit diagonal entry, or an imperfect mirror, must
  // stay 'general' — the skew banner cannot represent it.
  sparse::CooMatrix coo(3, 3);
  coo.add(0, 0, 2.0);  // diagonal entry: not representable as skew
  coo.add(1, 0, 5.0);
  coo.add(0, 1, -5.0);
  const auto a = coo.to_csr();
  std::stringstream ss;
  io::write_matrix_market(ss, a);
  EXPECT_NE(ss.str().find("real general"), std::string::npos) << ss.str();

  sparse::CooMatrix coo2(3, 3);
  coo2.add(1, 0, 5.0);
  coo2.add(0, 1, -4.0);  // mirror is not the exact negation
  const auto a2 = coo2.to_csr();
  std::stringstream ss2;
  io::write_matrix_market(ss2, a2);
  EXPECT_NE(ss2.str().find("real general"), std::string::npos) << ss2.str();
  const auto back2 = read_str(ss2.str());
  EXPECT_EQ(back2.a32.values(), a2.values());
}

TEST(MatrixMarket, SymmetricInputIsMirrored) {
  const auto m = read_str(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "% a comment\n"
      "3 3 4\n"
      "1 1 2.0\n"
      "2 1 -1.0\n"
      "2 2 2.0\n"
      "3 3 2.0\n");
  EXPECT_EQ(m.nnz(), 5u);  // off-diagonal mirrored, diagonal not doubled
  EXPECT_EQ(m.a32.at(0, 1), -1.0);
  EXPECT_EQ(m.a32.at(1, 0), -1.0);
  EXPECT_EQ(m.a32.at(0, 0), 2.0);
}

TEST(MatrixMarket, SkewSymmetricMirrorsNegated) {
  const auto m = read_str(
      "%%MatrixMarket matrix coordinate real skew-symmetric\n"
      "3 3 2\n"
      "2 1 5.0\n"
      "3 2 -1.0\n");
  EXPECT_EQ(m.nnz(), 4u);
  EXPECT_EQ(m.a32.at(1, 0), 5.0);
  EXPECT_EQ(m.a32.at(0, 1), -5.0);
  EXPECT_EQ(m.a32.at(2, 1), -1.0);
  EXPECT_EQ(m.a32.at(1, 2), 1.0);
}

TEST(MatrixMarket, PatternEntriesCarryUnitValues) {
  const auto m = read_str(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 3 3\n"
      "1 1\n"
      "2 3\n"
      "1 3\n");
  EXPECT_EQ(m.nnz(), 3u);
  EXPECT_EQ(m.a32.at(0, 0), 1.0);
  EXPECT_EQ(m.a32.at(1, 2), 1.0);
  EXPECT_EQ(m.a32.at(0, 2), 1.0);
}

TEST(MatrixMarket, IntegerFieldParsesAsDoubles) {
  const auto m = read_str(
      "%%MatrixMarket matrix coordinate integer general\n"
      "2 2 2\n"
      "1 1 3\n"
      "2 2 -4\n");
  EXPECT_EQ(m.a32.at(0, 0), 3.0);
  EXPECT_EQ(m.a32.at(1, 1), -4.0);
}

TEST(MatrixMarket, ArrayGeneralIsColumnMajor) {
  const auto m = read_str(
      "%%MatrixMarket matrix array real general\n"
      "2 3\n"
      "1.0\n2.0\n"    // column 1
      "3.0\n4.0\n"    // column 2
      "5.0\n6.0\n");  // column 3
  EXPECT_EQ(m.nnz(), 6u);
  EXPECT_EQ(m.a32.at(0, 0), 1.0);
  EXPECT_EQ(m.a32.at(1, 0), 2.0);
  EXPECT_EQ(m.a32.at(0, 1), 3.0);
  EXPECT_EQ(m.a32.at(1, 2), 6.0);
}

TEST(MatrixMarket, ArraySymmetricPacksLowerTriangle) {
  const auto m = read_str(
      "%%MatrixMarket matrix array real symmetric\n"
      "3 3\n"
      "2.0\n-1.0\n0.5\n"  // column 1: rows 1..3
      "2.0\n-1.0\n"       // column 2: rows 2..3
      "2.0\n");           // column 3: row 3
  EXPECT_EQ(m.nnz(), 9u);
  EXPECT_EQ(m.a32.at(2, 0), 0.5);
  EXPECT_EQ(m.a32.at(0, 2), 0.5);
  EXPECT_EQ(m.a32.at(1, 1), 2.0);
}

TEST(MatrixMarket, ArrayDropsExactZeros) {
  const auto m = read_str(
      "%%MatrixMarket matrix array real general\n"
      "2 2\n"
      "1.0\n0.0\n0.0\n4.0\n");
  EXPECT_EQ(m.nnz(), 2u);
}

TEST(MatrixMarket, DuplicateEntriesAccumulate) {
  const auto m = read_str(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 3\n"
      "1 1 1.5\n"
      "1 1 2.5\n"
      "2 2 1.0\n");
  EXPECT_EQ(m.nnz(), 2u);
  EXPECT_EQ(m.a32.at(0, 0), 4.0);
}

TEST(MatrixMarket, CommentsBlankLinesAndCrlfAreTolerated) {
  const auto m = read_str(
      "%%MatrixMarket matrix coordinate real general\r\n"
      "% header comment\r\n"
      "\r\n"
      "2 2 2\r\n"
      "% interleaved comment\n"
      "1 1 1.0\r\n"
      "\n"
      "2 2 2.0\n"
      "% trailing comment\n");
  EXPECT_EQ(m.nnz(), 2u);
}

// --- Malformed input: every path raises a typed error naming the line. ---

TEST(MatrixMarketErrors, HeaderProblems) {
  expect_mm_error("not a matrix\n1 1 1\n", Kind::bad_header, 1);
  expect_mm_error("%%MatrixMarket matrix coordinates real general\n1 1 1\n",
                  Kind::bad_header, 1);
  expect_mm_error("%%MatrixMarket matrix coordinate realish general\n1 1 1\n",
                  Kind::bad_header, 1);
  expect_mm_error("%%MatrixMarket matrix coordinate real sym\n1 1 1\n",
                  Kind::bad_header, 1);
  expect_mm_error("%%MatrixMarket matrix coordinate\n1 1 1\n", Kind::bad_header, 1);
  expect_mm_error("", Kind::bad_header, 1);
}

TEST(MatrixMarketErrors, UnsupportedSurface) {
  expect_mm_error("%%MatrixMarket vector coordinate real general\n1 1 1\n",
                  Kind::unsupported, 1);
  expect_mm_error("%%MatrixMarket matrix coordinate complex general\n1 1 1\n",
                  Kind::unsupported, 1);
  expect_mm_error("%%MatrixMarket matrix coordinate real hermitian\n1 1 1\n",
                  Kind::unsupported, 1);
  expect_mm_error("%%MatrixMarket matrix array pattern general\n1 1\n",
                  Kind::unsupported, 1);
  expect_mm_error("%%MatrixMarket matrix coordinate pattern skew-symmetric\n2 2 1\n2 1\n",
                  Kind::unsupported, 1);
}

TEST(MatrixMarketErrors, SizeLineProblems) {
  expect_mm_error("%%MatrixMarket matrix coordinate real general\n2 2\n", Kind::bad_size,
                  2);
  expect_mm_error("%%MatrixMarket matrix coordinate real general\n2 x 3\n",
                  Kind::bad_size, 2);
  expect_mm_error("%%MatrixMarket matrix coordinate real general\n-2 2 1\n",
                  Kind::bad_size, 2);
  expect_mm_error("%%MatrixMarket matrix array real general\n2 2 4\n", Kind::bad_size, 2);
  expect_mm_error("%%MatrixMarket matrix coordinate real general\n", Kind::bad_size, 2);
  // Comments shift the size line; the error names the real line number.
  expect_mm_error("%%MatrixMarket matrix coordinate real general\n% c1\n% c2\nbogus\n",
                  Kind::bad_size, 4);
}

TEST(MatrixMarketErrors, NonSquareSymmetric) {
  expect_mm_error("%%MatrixMarket matrix coordinate real symmetric\n2 3 1\n2 1 1.0\n",
                  Kind::inconsistent, 2);
}

TEST(MatrixMarketErrors, EntryProblems) {
  const std::string head = "%%MatrixMarket matrix coordinate real general\n2 2 1\n";
  expect_mm_error(head + "1 x 1.0\n", Kind::bad_entry, 3);
  expect_mm_error(head + "1 1\n", Kind::bad_entry, 3);
  expect_mm_error(head + "1 1 1.0 extra\n", Kind::bad_entry, 3);
  expect_mm_error(head + "1 1 abc\n", Kind::bad_entry, 3);
  expect_mm_error("%%MatrixMarket matrix coordinate pattern general\n2 2 1\n1 1 1.0\n",
                  Kind::bad_entry, 3);
  expect_mm_error("%%MatrixMarket matrix coordinate integer general\n2 2 1\n1 1 1.5\n",
                  Kind::bad_entry, 3);
  expect_mm_error("%%MatrixMarket matrix array real general\n2 2\n1.0 2.0\n3.0\n4.0\n",
                  Kind::bad_entry, 3);
}

TEST(MatrixMarketErrors, IndexProblems) {
  const std::string head = "%%MatrixMarket matrix coordinate real general\n2 2 1\n";
  expect_mm_error(head + "0 1 1.0\n", Kind::index_out_of_range, 3);  // 0-based input
  expect_mm_error(head + "1 0 1.0\n", Kind::index_out_of_range, 3);
  expect_mm_error(head + "5 1 1.0\n", Kind::index_out_of_range, 3);
  expect_mm_error(head + "1 5 1.0\n", Kind::index_out_of_range, 3);
  expect_mm_error(head + "-1 1 1.0\n", Kind::index_out_of_range, 3);
}

TEST(MatrixMarketErrors, NonFiniteValues) {
  const std::string head = "%%MatrixMarket matrix coordinate real general\n2 2 1\n";
  expect_mm_error(head + "1 1 nan\n", Kind::nonfinite_value, 3);
  expect_mm_error(head + "1 1 inf\n", Kind::nonfinite_value, 3);
  expect_mm_error(head + "1 1 -inf\n", Kind::nonfinite_value, 3);
  expect_mm_error(head + "1 1 1e999\n", Kind::nonfinite_value, 3);
}

TEST(MatrixMarketErrors, TruncatedFiles) {
  expect_mm_error("%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n",
                  Kind::truncated, 3);
  expect_mm_error("%%MatrixMarket matrix array real general\n2 2\n1.0\n2.0\n",
                  Kind::truncated, 4);
}

TEST(MatrixMarketErrors, DataPastDeclaredCount) {
  expect_mm_error(
      "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 1.0\n2 2 2.0\n",
      Kind::inconsistent, 4);
}

TEST(MatrixMarketErrors, SymmetryViolations) {
  expect_mm_error(
      "%%MatrixMarket matrix coordinate real symmetric\n3 3 1\n1 2 1.0\n",
      Kind::inconsistent, 3);  // upper-triangle entry
  expect_mm_error(
      "%%MatrixMarket matrix coordinate real skew-symmetric\n3 3 1\n2 2 1.0\n",
      Kind::inconsistent, 3);  // diagonal entry
}

TEST(MatrixMarketErrors, MissingFileHasIoKindAndNoLine) {
  try {
    (void)io::read_matrix_market(std::string("/nonexistent/abft_io.mtx"));
    FAIL() << "expected MatrixMarketError{io}";
  } catch (const io::MatrixMarketError& e) {
    EXPECT_EQ(e.kind(), Kind::io);
    EXPECT_EQ(e.line(), 0u);
  }
}

// --- The 32 -> 64-bit promotion boundary. ---

TEST(MatrixMarketPromotion, BoundaryIsExactlyUint32Max) {
  constexpr std::size_t kMax32 = 0xFFFFFFFFu;
  EXPECT_EQ(io::required_index_width(kMax32, 1, 1), IndexWidth::i32);
  EXPECT_EQ(io::required_index_width(1, kMax32, 1), IndexWidth::i32);
  EXPECT_EQ(io::required_index_width(1, 1, kMax32), IndexWidth::i32);
  EXPECT_EQ(io::required_index_width(kMax32 + 1, 1, 1), IndexWidth::i64);
  EXPECT_EQ(io::required_index_width(1, kMax32 + 1, 1), IndexWidth::i64);
  EXPECT_EQ(io::required_index_width(1, 1, kMax32 + 1), IndexWidth::i64);
}

TEST(MatrixMarketPromotion, HeaderDrivesTheDecisionWithoutAssembly) {
  // A declared 2^33-row matrix must promote — decided from the size line
  // alone, no assembly required.
  std::istringstream ss(
      "%%MatrixMarket matrix coordinate real general\n8589934592 8589934592 1\n");
  const auto h = io::read_mm_header(ss);
  EXPECT_EQ(io::required_index_width(h.nrows, h.ncols, io::worst_case_assembled_nnz(h)),
            IndexWidth::i64);
}

TEST(MatrixMarketPromotion, ArraySymmetricExpansionAlsoCountsDouble) {
  // An array symmetric file declares only the packed triangle n(n+1)/2; the
  // expansion approaches n^2, so the promotion bound must double it too
  // (n = 70000: triangle ~2.45e9 fits uint32, the expansion does not).
  std::istringstream ss("%%MatrixMarket matrix array real symmetric\n70000 70000\n");
  const auto h = io::read_mm_header(ss);
  EXPECT_LE(h.entries, std::size_t{0xFFFFFFFF});
  EXPECT_EQ(io::required_index_width(h.nrows, h.ncols, io::worst_case_assembled_nnz(h)),
            IndexWidth::i64);
}

TEST(MatrixMarket, BannerTagIsCaseInsensitive) {
  const auto m = read_str(
      "%%matrixmarket matrix coordinate real general\n"
      "1 1 1\n"
      "1 1 2.5\n");
  EXPECT_EQ(m.a32.at(0, 0), 2.5);
}

TEST(MatrixMarketPromotion, SymmetricExpansionCountsDouble) {
  // 3 * 10^9 symmetric entries fit uint32 stored but not expanded: the
  // worst-case bound promotes.
  std::istringstream ss(
      "%%MatrixMarket matrix coordinate real symmetric\n4000000000 4000000000 "
      "3000000000\n");
  const auto h = io::read_mm_header(ss);
  EXPECT_EQ(io::worst_case_assembled_nnz(h), 6000000000u);
  EXPECT_EQ(io::required_index_width(h.nrows, h.ncols, io::worst_case_assembled_nnz(h)),
            IndexWidth::i64);
}

TEST(MatrixMarketPromotion, ForcingNarrowOnWideFails) {
  std::istringstream ss(
      "%%MatrixMarket matrix coordinate real general\n8589934592 1 1\n1 1 1.0\n");
  EXPECT_THROW((void)io::read_matrix_market(ss, {.force_width = IndexWidth::i32}),
               io::MatrixMarketError);
}

TEST(MatrixMarketPromotion, SmallFileLoadsIdenticallyAtBothWidths) {
  const std::string text =
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "3 3 4\n1 1 2.0\n2 1 -1.0\n2 2 2.0\n3 3 2.0\n";
  const auto narrow = read_str(text);
  const auto wide = read_str(text, {.force_width = IndexWidth::i64});
  ASSERT_FALSE(narrow.wide());
  ASSERT_TRUE(wide.wide());
  ASSERT_EQ(narrow.nnz(), wide.nnz());
  EXPECT_EQ(narrow.a32.values(), wide.a64.values());
  for (std::size_t i = 0; i < narrow.a32.cols().size(); ++i) {
    EXPECT_EQ(narrow.a32.cols()[i], wide.a64.cols()[i]);
  }
}

// --- Protected (checksummed) assembly mode. ---

TEST(ProtectedAssembly, CleanBufferConvertsIdentically) {
  const std::string text =
      "%%MatrixMarket matrix coordinate real general\n"
      "3 3 4\n1 1 2.0\n2 1 -1.0\n2 2 2.0\n3 3 2.0\n";
  const auto plain = read_str(text);
  const auto prot = read_str(text, {.protected_assembly = true});
  EXPECT_EQ(plain.a32.values(), prot.a32.values());
  EXPECT_EQ(plain.a32.cols(), prot.a32.cols());
  EXPECT_EQ(plain.a32.row_ptr(), prot.a32.row_ptr());
}

TEST(ProtectedAssembly, DetectsCorruptionBetweenReadAndConvert) {
  sparse::CooMatrix coo(8, 8);
  coo.enable_protection();
  for (std::size_t i = 0; i < 8; ++i) coo.add(i, i, 1.0 + static_cast<double>(i));
  EXPECT_EQ(coo.verify(), 0u);

  // A bit flip lands in the triplet buffer after parsing, before conversion.
  coo.raw_entries()[3].value = 99.0;
  EXPECT_EQ(coo.verify(), 1u);
  EXPECT_THROW((void)coo.to_csr(), sparse::CooIntegrityError);
}

TEST(ProtectedAssembly, DetectsIndexCorruptionAcrossBlocks) {
  sparse::Coo64Matrix coo(4000, 4000);
  coo.enable_protection();
  for (std::size_t i = 0; i < 3000; ++i) coo.add(i, i, 1.0);  // spans >2 blocks
  coo.raw_entries()[2500].col ^= 1;  // second block
  EXPECT_EQ(coo.verify(), 1u);
  try {
    (void)coo.to_csr();
    FAIL() << "expected CooIntegrityError";
  } catch (const sparse::CooIntegrityError& e) {
    EXPECT_EQ(e.block(), 2500u / sparse::Coo64Matrix::kChecksumBlock);
  }
}

TEST(ProtectedAssembly, ProtectionMustStartEmpty) {
  sparse::CooMatrix coo(2, 2);
  coo.add(0, 0, 1.0);
  EXPECT_THROW(coo.enable_protection(), std::logic_error);
}

// --- File-level helpers. ---

TEST(MatrixMarket, FileRoundTrip) {
  const auto path = std::filesystem::temp_directory_path() / "abft_io_test.mtx";
  const auto a = sparse::laplacian_2d(6, 5);
  io::write_matrix_market(path.string(), a);
  const auto b = io::read_matrix_market(path.string());
  EXPECT_EQ(b.a32.values(), a.values());
  EXPECT_EQ(b.a32.cols(), a.cols());
  EXPECT_EQ(b.a32.row_ptr(), a.row_ptr());
  std::filesystem::remove(path);
}

TEST(VectorIo, FileRoundTrip) {
  const auto path = std::filesystem::temp_directory_path() / "abft_vec_test.txt";
  aligned_vector<double> v = {1.5, -2.25, 3.0e-7, 4e300};
  io::write_vector(path.string(), v);
  const auto w = io::read_vector(path.string());
  EXPECT_EQ(w, v);
  std::filesystem::remove(path);
}

TEST(VectorIo, MalformedContentRaisesInsteadOfTruncating) {
  const auto path = std::filesystem::temp_directory_path() / "abft_vec_bad.txt";
  {
    std::ofstream os(path);
    os << "1.5\nnot-a-number\n2.5\n";
  }
  try {
    (void)io::read_vector(path.string());
    FAIL() << "expected MatrixMarketError{bad_entry}";
  } catch (const io::MatrixMarketError& e) {
    EXPECT_EQ(e.kind(), Kind::bad_entry);
  }
  std::filesystem::remove(path);
}

}  // namespace
