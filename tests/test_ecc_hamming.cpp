// Property tests for the generic extended-Hamming SECDED codec (paper §IV):
// every single-bit flip anywhere in the codeword must be corrected, every
// double-bit flip must be detected-but-not-corrected.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>

#include "common/rng.hpp"
#include "ecc/hamming.hpp"

namespace {

using abft::CheckOutcome;
using abft::Xoshiro256;

template <class Code>
typename Code::data_t random_data(Xoshiro256& rng) {
  typename Code::data_t data{};
  for (auto& w : data) w = rng();
  // Clear bits above DataBits in the last word.
  constexpr unsigned rem = Code::kDataBits % 64;
  if constexpr (rem != 0) {
    data[Code::kWords - 1] &= abft::low_mask64(rem);
  }
  return data;
}

template <class Code>
void flip_data_bit(typename Code::data_t& data, unsigned bit) {
  data[bit / 64] = abft::flip_bit(data[bit / 64], bit % 64);
}

// ---------------------------------------------------------------------------
// Typed tests across the three instantiations the paper uses.
// ---------------------------------------------------------------------------

template <class Code>
class HammingTypedTest : public ::testing::Test {};

using Codes = ::testing::Types<abft::ecc::Secded64, abft::ecc::Secded128,
                               abft::ecc::Secded96, abft::ecc::HammingSecded<56>,
                               abft::ecc::HammingSecded<112>,
                               abft::ecc::HammingSecded<118>>;
TYPED_TEST_SUITE(HammingTypedTest, Codes);

TYPED_TEST(HammingTypedTest, CleanCodewordChecksOk) {
  Xoshiro256 rng(1);
  for (int rep = 0; rep < 50; ++rep) {
    auto data = random_data<TypeParam>(rng);
    const auto red = TypeParam::encode(data);
    auto copy = data;
    const auto res = TypeParam::check_and_correct(copy, red);
    EXPECT_EQ(res.outcome, CheckOutcome::ok);
    EXPECT_EQ(copy, data);
  }
}

TYPED_TEST(HammingTypedTest, EverySingleDataBitFlipIsCorrected) {
  Xoshiro256 rng(2);
  auto data = random_data<TypeParam>(rng);
  const auto red = TypeParam::encode(data);
  for (unsigned bit = 0; bit < TypeParam::kDataBits; ++bit) {
    auto corrupted = data;
    flip_data_bit<TypeParam>(corrupted, bit);
    const auto res = TypeParam::check_and_correct(corrupted, red);
    EXPECT_EQ(res.outcome, CheckOutcome::corrected) << "bit " << bit;
    EXPECT_EQ(corrupted, data) << "bit " << bit;
    EXPECT_EQ(res.corrected_data_bit, static_cast<int>(bit));
  }
}

TYPED_TEST(HammingTypedTest, EverySingleRedundancyBitFlipIsCorrected) {
  Xoshiro256 rng(3);
  auto data = random_data<TypeParam>(rng);
  const auto red = TypeParam::encode(data);
  for (unsigned bit = 0; bit < TypeParam::kRedundancyBits; ++bit) {
    auto copy = data;
    const auto corrupted_red = red ^ (1u << bit);
    const auto res = TypeParam::check_and_correct(copy, corrupted_red);
    EXPECT_EQ(res.outcome, CheckOutcome::corrected) << "red bit " << bit;
    EXPECT_EQ(copy, data) << "data must be untouched for red bit " << bit;
    EXPECT_EQ(res.corrected_data_bit, -1);
    EXPECT_EQ(res.fixed_redundancy, red) << "red bit " << bit;
  }
}

TYPED_TEST(HammingTypedTest, EveryDoubleDataBitFlipIsDetected) {
  Xoshiro256 rng(4);
  auto data = random_data<TypeParam>(rng);
  const auto red = TypeParam::encode(data);
  // Exhaustive over pairs is O(bits^2); sample pairs deterministically for
  // the bigger codes, exhaustive for the 56/64-bit ones.
  const unsigned n = TypeParam::kDataBits;
  const unsigned stride = n > 64 ? 7 : 1;
  for (unsigned i = 0; i < n; ++i) {
    for (unsigned j = i + 1; j < n; j += stride) {
      auto corrupted = data;
      flip_data_bit<TypeParam>(corrupted, i);
      flip_data_bit<TypeParam>(corrupted, j);
      const auto res = TypeParam::check_and_correct(corrupted, red);
      EXPECT_EQ(res.outcome, CheckOutcome::uncorrectable)
          << "bits " << i << "," << j;
    }
  }
}

TYPED_TEST(HammingTypedTest, MixedDataAndRedundancyDoubleFlipIsDetected) {
  Xoshiro256 rng(5);
  auto data = random_data<TypeParam>(rng);
  const auto red = TypeParam::encode(data);
  for (unsigned i = 0; i < TypeParam::kDataBits; i += 3) {
    for (unsigned j = 0; j < TypeParam::kRedundancyBits; ++j) {
      auto corrupted = data;
      flip_data_bit<TypeParam>(corrupted, i);
      const auto res = TypeParam::check_and_correct(corrupted, red ^ (1u << j));
      EXPECT_EQ(res.outcome, CheckOutcome::uncorrectable) << i << "," << j;
    }
  }
}

TYPED_TEST(HammingTypedTest, EncodeIsDeterministic) {
  Xoshiro256 rng(6);
  const auto data = random_data<TypeParam>(rng);
  EXPECT_EQ(TypeParam::encode(data), TypeParam::encode(data));
}

TYPED_TEST(HammingTypedTest, DistinctPositionsForAllDataBits) {
  // The Hamming positions of the data bits must be unique non-powers of two.
  for (unsigned d = 0; d < TypeParam::kDataBits; ++d) {
    const unsigned pos = TypeParam::position_of_data_bit(d);
    EXPECT_NE(pos & (pos - 1), 0u) << "data bit at power-of-two position " << d;
    if (d > 0) {
      EXPECT_GT(pos, TypeParam::position_of_data_bit(d - 1));
    }
  }
}

// ---------------------------------------------------------------------------
// Specific instantiation facts the paper quotes.
// ---------------------------------------------------------------------------

TEST(HammingLayout, RedundancyWidthsMatchPaper) {
  // SECDED64 adds 8 bits per 64 data bits; SECDED128 adds 9 per 128 (§IV).
  EXPECT_EQ(abft::ecc::Secded64::kRedundancyBits, 8u);
  EXPECT_EQ(abft::ecc::Secded128::kRedundancyBits, 9u);
  // SECDED(96,88) fits exactly into the spare byte of a CSR column index.
  EXPECT_EQ(abft::ecc::Secded96::kDataBits, 88u);
  EXPECT_EQ(abft::ecc::Secded96::kRedundancyBits, 8u);
}

TEST(HammingCorrection, TripleFlipIsNeverSilentlyAccepted) {
  // 3 flips exceed SECDED's guarantee: the outcome may be a (wrong)
  // "corrected" or "uncorrectable", but never "ok" with unchanged data that
  // differs from the original — i.e. it must never claim the corrupted word
  // is clean.
  using Code = abft::ecc::Secded64;
  Xoshiro256 rng(7);
  for (int rep = 0; rep < 200; ++rep) {
    Code::data_t data{rng()};
    const auto red = Code::encode(data);
    auto corrupted = data;
    unsigned bits[3];
    bits[0] = static_cast<unsigned>(rng.below(64));
    do { bits[1] = static_cast<unsigned>(rng.below(64)); } while (bits[1] == bits[0]);
    do {
      bits[2] = static_cast<unsigned>(rng.below(64));
    } while (bits[2] == bits[0] || bits[2] == bits[1]);
    for (unsigned b : bits) corrupted[0] = abft::flip_bit(corrupted[0], b);
    auto work = corrupted;
    const auto res = Code::check_and_correct(work, red);
    EXPECT_NE(res.outcome, CheckOutcome::ok) << "triple flip reported clean";
  }
}

}  // namespace
