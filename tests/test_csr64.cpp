// 64-bit-index protection (paper §V-B's "easily extended" scenario):
// scheme properties, container round trips, SpMV equivalence and fault
// response for ProtectedCsr64.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "abft/protected_csr64.hpp"
#include "common/rng.hpp"
#include "faults/injector.hpp"
#include "sparse/generators.hpp"
#include "sparse/transform.hpp"

namespace {

using namespace abft;

// ---------------------------------------------------------------------------
// Scheme-level sweeps.
// ---------------------------------------------------------------------------

class Elem64SecdedFlips : public ::testing::TestWithParam<unsigned> {};

TEST_P(Elem64SecdedFlips, SingleFlipAnywhereIn128BitsIsCorrected) {
  Xoshiro256 rng(1);
  const unsigned bit = GetParam();
  double v = rng.uniform(-10, 10);
  std::uint64_t c = rng() & Elem64Secded::kColMask;
  Elem64Secded::encode(v, c);
  const double v0 = v;
  const std::uint64_t c0 = c;
  if (bit < 64) {
    v = bits_to_double(flip_bit(double_to_bits(v), bit));
  } else {
    c = flip_bit(c, bit - 64);
  }
  double vd;
  std::uint64_t cd;
  EXPECT_EQ(Elem64Secded::decode(v, c, vd, cd), CheckOutcome::corrected) << bit;
  EXPECT_EQ(v, v0);
  EXPECT_EQ(c, c0);
}

INSTANTIATE_TEST_SUITE_P(AllBits, Elem64SecdedFlips, ::testing::Range(0u, 128u));

TEST(Elem64Secded, DoubleFlipsDetected) {
  Xoshiro256 rng(2);
  for (unsigned i = 0; i < 64; i += 9) {
    for (unsigned j = 0; j < 56; j += 11) {
      double v = rng.uniform(-10, 10);
      std::uint64_t c = rng() & Elem64Secded::kColMask;
      Elem64Secded::encode(v, c);
      v = bits_to_double(flip_bit(double_to_bits(v), i));
      c = flip_bit(c, j);
      double vd;
      std::uint64_t cd;
      EXPECT_EQ(Elem64Secded::decode(v, c, vd, cd), CheckOutcome::uncorrectable)
          << i << "," << j;
    }
  }
}

TEST(Elem64Sed, AllSingleFlipsDetected) {
  Xoshiro256 rng(3);
  for (unsigned bit = 0; bit < 128; ++bit) {
    double v = rng.uniform(-10, 10);
    std::uint64_t c = rng() & Elem64Sed::kColMask;
    Elem64Sed::encode(v, c);
    if (bit < 64) {
      v = bits_to_double(flip_bit(double_to_bits(v), bit));
    } else {
      c = flip_bit(c, bit - 64);
    }
    double vd;
    std::uint64_t cd;
    EXPECT_EQ(Elem64Sed::decode(v, c, vd, cd), CheckOutcome::uncorrectable) << bit;
  }
}

TEST(Row64Secded, SingleEntryCodewordCorrectsAllFlips) {
  Xoshiro256 rng(4);
  for (unsigned bit = 0; bit < 64; ++bit) {
    std::uint64_t vals[1] = {rng() & Row64Secded::kValueMask};
    std::uint64_t storage[1];
    Row64Secded::encode_group(vals, storage);
    const std::uint64_t clean = storage[0];
    storage[0] = flip_bit(storage[0], bit);
    std::uint64_t decoded[1];
    const auto outcome = Row64Secded::decode_group(storage, decoded);
    // Bit 63 (top redundancy-byte bit) is the unused 8th slot.
    if (bit == 63) {
      EXPECT_EQ(outcome, CheckOutcome::ok);
    } else {
      EXPECT_EQ(outcome, CheckOutcome::corrected) << bit;
      EXPECT_EQ(storage[0], clean) << bit;
    }
    EXPECT_EQ(decoded[0], vals[0]);
  }
}

TEST(Row64Crc32c, GroupRoundTripAndCorrection) {
  Xoshiro256 rng(5);
  std::uint64_t vals[4], storage[4];
  for (auto& v : vals) v = rng() & Row64Crc32c::kValueMask;
  Row64Crc32c::encode_group(vals, storage);
  std::uint64_t decoded[4];
  EXPECT_EQ(Row64Crc32c::decode_group(storage, decoded), CheckOutcome::ok);
  for (int e = 0; e < 4; ++e) EXPECT_EQ(decoded[e], vals[e]);

  for (int rep = 0; rep < 50; ++rep) {
    std::uint64_t st[4];
    Row64Crc32c::encode_group(vals, st);
    const auto e = rng.below(4);
    st[e] = flip_bit(st[e], static_cast<unsigned>(rng.below(64)));
    EXPECT_EQ(Row64Crc32c::decode_group(st, decoded), CheckOutcome::corrected) << rep;
    for (int k = 0; k < 4; ++k) EXPECT_EQ(decoded[k], vals[k]) << rep;
  }
}

// ---------------------------------------------------------------------------
// Container round trips + SpMV.
// ---------------------------------------------------------------------------

template <class Combo>
class ProtectedCsr64Test : public ::testing::Test {};

template <class E, class R>
struct Combo64 {
  using ES = E;
  using RS = R;
};

using Combos64 =
    ::testing::Types<Combo64<Elem64None, Row64None>, Combo64<Elem64Sed, Row64Sed>,
                     Combo64<Elem64Secded, Row64Secded>,
                     Combo64<Elem64Crc32c, Row64Crc32c>,
                     Combo64<Elem64Secded, Row64Crc32c>>;
TYPED_TEST_SUITE(ProtectedCsr64Test, Combos64);

template <class ES>
sparse::Csr64Matrix matrix64() {
  auto a = sparse::laplacian_2d(11, 9);
  if constexpr (ES::kMinRowNnz > 1) a = sparse::pad_rows_to_min_nnz(a, ES::kMinRowNnz);
  return sparse::Csr64Matrix::from_csr(a);
}

TYPED_TEST(ProtectedCsr64Test, RoundTripPreservesMatrix) {
  using ES = typename TypeParam::ES;
  using RS = typename TypeParam::RS;
  const auto a = matrix64<ES>();
  auto p = ProtectedCsr64<ES, RS>::from_csr64(a);
  auto back = p.to_csr64();
  EXPECT_EQ(back.row_ptr(), a.row_ptr());
  EXPECT_EQ(back.cols(), a.cols());
  EXPECT_EQ(back.values(), a.values());
  EXPECT_EQ(p.verify_all(), 0u);
}

TYPED_TEST(ProtectedCsr64Test, SpmvMatchesBaselineInBothModes) {
  using ES = typename TypeParam::ES;
  using RS = typename TypeParam::RS;
  const auto a = matrix64<ES>();
  auto p = ProtectedCsr64<ES, RS>::from_csr64(a);
  Xoshiro256 rng(6);
  std::vector<double> x(a.ncols()), yref(a.nrows()), y(a.nrows());
  for (auto& v : x) v = rng.uniform(-2, 2);
  sparse::spmv(a, x.data(), yref.data());
  for (CheckMode mode : {CheckMode::full, CheckMode::bounds_only}) {
    p.spmv(x, y, mode);
    for (std::size_t i = 0; i < a.nrows(); ++i) EXPECT_EQ(y[i], yref[i]);
  }
}

TEST(ProtectedCsr64Faults, SecdedRepairsRandomFlips) {
  const auto a = matrix64<Elem64Secded>();
  FaultLog log;
  auto p =
      ProtectedCsr64<Elem64Secded, Row64Secded>::from_csr64(a, &log, DuePolicy::record_only);
  faults::Injector injector(7);
  auto vals = p.raw_values();
  injector.inject_multi({reinterpret_cast<std::uint8_t*>(vals.data()), vals.size_bytes()},
                        5);
  EXPECT_EQ(p.verify_all(), 0u);
  EXPECT_GE(log.corrected(), 1u);
  auto back = p.to_csr64();
  EXPECT_EQ(back.values(), a.values());
}

TEST(ProtectedCsr64Faults, BoundsGuardInSkipMode) {
  const auto a = matrix64<Elem64Sed>();
  FaultLog log;
  auto p = ProtectedCsr64<Elem64Sed, Row64Sed>::from_csr64(a, &log, DuePolicy::record_only);
  p.raw_cols()[4] = Elem64Sed::kColMask;  // masked value still >= ncols
  std::vector<double> x(a.ncols(), 1.0), y(a.nrows());
  p.spmv(x, y, CheckMode::bounds_only);
  EXPECT_GE(log.bounds_violations(), 1u);
  EXPECT_EQ(log.uncorrectable(), 0u);
}

TEST(ProtectedCsr64Limits, EnforcesSchemeRanges) {
  // A matrix "column" index beyond 2^56 must be rejected by SECDED/CRC.
  sparse::Csr64Matrix wide(1, std::uint64_t{1} << 57);
  wide.row_ptr() = {0, 1};
  wide.cols() = {(std::uint64_t{1} << 57) - 1};
  wide.values() = {1.0};
  EXPECT_THROW((ProtectedCsr64<Elem64Secded, Row64None>::from_csr64(wide)),
               std::invalid_argument);
  EXPECT_NO_THROW((ProtectedCsr64<Elem64Sed, Row64None>::from_csr64(wide)));
}

}  // namespace
