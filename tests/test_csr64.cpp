// 64-bit-index protection (paper §V-B's "easily extended" scenario) through
// the *unified* width-parameterized stack: the same ProtectedCsr container,
// protected kernels and solvers that serve the 32-bit path, instantiated at
// Index = uint64_t. Scheme-level bit sweeps live in the shared harness
// (tests/scheme_matrix.hpp via test_element_schemes / test_row_schemes).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "abft/protected_csr.hpp"
#include "abft/protected_kernels.hpp"
#include "abft/protected_vector.hpp"
#include "abft/schemes64.hpp"
#include "common/rng.hpp"
#include "faults/injector.hpp"
#include "solvers/cg.hpp"
#include "sparse/csr64.hpp"
#include "sparse/generators.hpp"
#include "sparse/transform.hpp"

namespace {

using namespace abft;

// ---------------------------------------------------------------------------
// Container round trips + SpMV over the (element x row) scheme combinations.
// ---------------------------------------------------------------------------

template <class Combo>
class ProtectedCsr64Test : public ::testing::Test {};

template <class E, class R>
struct Combo64 {
  using ES = E;
  using RS = R;
};

using Combos64 =
    ::testing::Types<Combo64<Elem64None, Row64None>, Combo64<Elem64Sed, Row64Sed>,
                     Combo64<Elem64Secded, Row64Secded>,
                     Combo64<Elem64Secded, Row64Secded128>,
                     Combo64<Elem64Crc32c, Row64Crc32c>,
                     Combo64<Elem64Secded, Row64Crc32c>>;
TYPED_TEST_SUITE(ProtectedCsr64Test, Combos64);

template <class ES>
sparse::Csr64Matrix matrix64() {
  auto a = sparse::laplacian_2d(11, 9);
  if constexpr (ES::kMinRowNnz > 1) a = sparse::pad_rows_to_min_nnz(a, ES::kMinRowNnz);
  return sparse::Csr64Matrix::from_csr(a);
}

TYPED_TEST(ProtectedCsr64Test, RoundTripPreservesMatrix) {
  using ES = typename TypeParam::ES;
  using RS = typename TypeParam::RS;
  const auto a = matrix64<ES>();
  auto p = ProtectedCsr<std::uint64_t, ES, RS>::from_csr(a);
  auto back = p.to_csr();
  EXPECT_EQ(back.row_ptr(), a.row_ptr());
  EXPECT_EQ(back.cols(), a.cols());
  EXPECT_EQ(back.values(), a.values());
  EXPECT_EQ(p.verify_all(), 0u);
}

TYPED_TEST(ProtectedCsr64Test, SpmvMatchesBaselineInBothModes) {
  using ES = typename TypeParam::ES;
  using RS = typename TypeParam::RS;
  const auto a = matrix64<ES>();
  auto p = ProtectedCsr<std::uint64_t, ES, RS>::from_csr(a);
  Xoshiro256 rng(6);
  std::vector<double> x(a.ncols()), yref(a.nrows()), y(a.nrows());
  for (auto& v : x) v = rng.uniform(-2, 2);
  sparse::spmv(a, x.data(), yref.data());
  for (CheckMode mode : {CheckMode::full, CheckMode::bounds_only}) {
    p.spmv(x, y, mode);
    for (std::size_t i = 0; i < a.nrows(); ++i) EXPECT_EQ(y[i], yref[i]);
  }
}

// ---------------------------------------------------------------------------
// The shared protected kernels + CG solver over a 64-bit matrix — the same
// templates the 32-bit path uses, no width-specific kernel code involved.
// ---------------------------------------------------------------------------

TEST(ProtectedCsr64Kernels, SharedSpmvKernelMatchesBaseline) {
  const auto a = matrix64<Elem64Secded>();
  auto p = ProtectedCsr<std::uint64_t, Elem64Secded, Row64Secded>::from_csr(a);
  Xoshiro256 rng(7);
  // Pre-mask x so the reference sees exactly what the protected vector
  // stores; the result vector's own mantissa-LSB redundancy costs at most a
  // few ULPs per entry.
  std::vector<double> xref(a.ncols()), yref(a.nrows());
  for (auto& v : xref) v = VecSecded64::mask(rng.uniform(-2, 2));
  sparse::spmv(a, xref.data(), yref.data());

  ProtectedVector<VecSecded64> x(a.ncols()), y(a.nrows());
  x.assign({xref.data(), xref.size()});
  spmv(p, x, y);  // abft::spmv — the one kernel template, both widths
  for (std::size_t i = 0; i < a.nrows(); ++i) {
    EXPECT_NEAR(y.load(i), yref[i], 1e-12) << i;
  }
}

TEST(ProtectedCsr64Kernels, SharedCgSolverConvergesAndRepairsFlip) {
  auto a32 = sparse::laplacian_2d(24, 24);
  const auto a = sparse::Csr64Matrix::from_csr(a32);
  const std::size_t n = a.nrows();
  std::vector<double> ones(n, 1.0), rhs(n, 0.0);
  sparse::spmv(a, ones.data(), rhs.data());

  FaultLog log;
  auto pa = ProtectedCsr<std::uint64_t, Elem64Secded, Row64Secded>::from_csr(
      a, &log, DuePolicy::record_only);
  ProtectedVector<VecSecded64> b(n, &log, DuePolicy::record_only);
  ProtectedVector<VecSecded64> u(n, &log, DuePolicy::record_only);
  b.assign({rhs.data(), n});

  faults::Injector injector(11);
  auto vals = pa.raw_values();
  injector.inject_single(
      {reinterpret_cast<std::uint8_t*>(vals.data()), vals.size_bytes()});

  solvers::SolveOptions opts;
  opts.tolerance = 1e-11;
  const auto res = solvers::cg_solve(pa, b, u, opts);
  EXPECT_TRUE(res.converged);
  EXPECT_GE(log.corrected(), 1u);

  std::vector<double> got(n, 0.0);
  u.extract({got.data(), n});
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(got[i], 1.0, 1e-7);
}

// ---------------------------------------------------------------------------
// Fault response and range limits.
// ---------------------------------------------------------------------------

TEST(ProtectedCsr64Faults, SecdedRepairsRandomFlips) {
  const auto a = matrix64<Elem64Secded>();
  FaultLog log;
  auto p = ProtectedCsr<std::uint64_t, Elem64Secded, Row64Secded>::from_csr(
      a, &log, DuePolicy::record_only);
  faults::Injector injector(7);
  auto vals = p.raw_values();
  injector.inject_multi({reinterpret_cast<std::uint8_t*>(vals.data()), vals.size_bytes()},
                        5);
  EXPECT_EQ(p.verify_all(), 0u);
  EXPECT_GE(log.corrected(), 1u);
  auto back = p.to_csr();
  EXPECT_EQ(back.values(), a.values());
}

TEST(ProtectedCsr64Faults, BoundsGuardInSkipMode) {
  const auto a = matrix64<Elem64Sed>();
  FaultLog log;
  auto p = ProtectedCsr<std::uint64_t, Elem64Sed, Row64Sed>::from_csr(
      a, &log, DuePolicy::record_only);
  p.raw_cols()[4] = Elem64Sed::kColMask;  // masked value still >= ncols
  std::vector<double> x(a.ncols(), 1.0), y(a.nrows());
  p.spmv(x, y, CheckMode::bounds_only);
  EXPECT_GE(log.bounds_violations(), 1u);
  EXPECT_EQ(log.uncorrectable(), 0u);
}

TEST(ProtectedCsr64Limits, EnforcesSchemeRanges) {
  // A matrix "column" index beyond 2^56 must be rejected by SECDED/CRC.
  sparse::Csr64Matrix wide(1, std::uint64_t{1} << 57);
  wide.row_ptr() = {0, 1};
  wide.cols() = {(std::uint64_t{1} << 57) - 1};
  wide.values() = {1.0};
  EXPECT_THROW((ProtectedCsr<std::uint64_t, Elem64Secded, Row64None>::from_csr(wide)),
               std::invalid_argument);
  EXPECT_NO_THROW((ProtectedCsr<std::uint64_t, Elem64Sed, Row64None>::from_csr(wide)));
}

// The two widths must agree: protecting the widened copy of a matrix and
// decoding it back yields exactly the widened original.
TEST(ProtectedCsr64Consistency, WidenedMatrixRoundTripsAcrossWidths) {
  auto a32 = sparse::laplacian_2d(9, 7);
  auto p32 = ProtectedCsr<std::uint32_t, ElemSecded, RowSecded64>::from_csr(a32);
  auto p64 = ProtectedCsr<std::uint64_t, Elem64Secded, Row64Secded>::from_csr(
      sparse::Csr64Matrix::from_csr(a32));
  const auto back32 = p32.to_csr();
  const auto back64 = p64.to_csr();
  ASSERT_EQ(back32.nnz(), back64.nnz());
  for (std::size_t k = 0; k < back32.nnz(); ++k) {
    EXPECT_EQ(back32.values()[k], back64.values()[k]);
    EXPECT_EQ(static_cast<std::uint64_t>(back32.cols()[k]), back64.cols()[k]);
  }
}

}  // namespace
