// Matrix analysis (MatrixStats) and the format advisor, including the
// locked recommendations for the committed fixtures under tests/data/.
#include <gtest/gtest.h>

#include <numeric>
#include <sstream>
#include <string>

#include "io/io.hpp"
#include "sparse/coo.hpp"
#include "sparse/ell.hpp"
#include "sparse/generators.hpp"
#include "sparse/sell.hpp"

namespace {

using namespace abft;

[[nodiscard]] std::string fixture(const char* name) {
  return std::string(ABFT_TEST_DATA_DIR) + "/" + name;
}

/// 24x24 SPD arrowhead (one dense row/column): the long-tail archetype.
[[nodiscard]] sparse::CsrMatrix arrowhead(std::size_t n) {
  sparse::CooMatrix coo(n, n);
  coo.add(0, 0, static_cast<double>(n) + 1.0);
  for (std::size_t j = 1; j < n; ++j) {
    coo.add(0, j, -1.0);
    coo.add(j, 0, -1.0);
    coo.add(j, j, 2.0);
  }
  return coo.to_csr();
}

TEST(MatrixStats, LaplacianProfile) {
  const auto a = sparse::laplacian_2d(8, 8);
  const auto s = io::analyze(a);
  EXPECT_EQ(s.nrows, 64u);
  EXPECT_EQ(s.ncols, 64u);
  EXPECT_EQ(s.nnz, a.nnz());
  EXPECT_EQ(s.row_min, 3u);   // corners
  EXPECT_EQ(s.row_max, 5u);   // interior
  EXPECT_DOUBLE_EQ(s.row_mean, static_cast<double>(a.nnz()) / 64.0);
  EXPECT_GT(s.row_variance, 0.0);
  EXPECT_EQ(s.bandwidth, 8u);  // the nx-offset coupling
  EXPECT_TRUE(s.structurally_symmetric);
  EXPECT_TRUE(s.numerically_symmetric);
  EXPECT_EQ(s.diag_present, 64u);
  EXPECT_EQ(s.diag_nonzero, 64u);
  EXPECT_EQ(s.ell_width, 5u);
  EXPECT_EQ(s.ell_padded_slots, 5u * 64u);
  // The histogram partitions the rows.
  const auto total = std::accumulate(s.row_hist.begin(), s.row_hist.end(), std::size_t{0});
  EXPECT_EQ(total, s.nrows);
}

TEST(MatrixStats, DetectsStructuralAndNumericAsymmetry) {
  {
    sparse::CooMatrix coo(3, 3);
    coo.add(0, 0, 1.0);
    coo.add(0, 2, 5.0);  // no mirror
    coo.add(1, 1, 1.0);
    coo.add(2, 2, 1.0);
    const auto s = io::analyze(coo.to_csr());
    EXPECT_FALSE(s.structurally_symmetric);
    EXPECT_FALSE(s.numerically_symmetric);
    EXPECT_EQ(s.bandwidth, 2u);
  }
  {
    sparse::CooMatrix coo(2, 2);
    coo.add(0, 0, 1.0);
    coo.add(0, 1, 2.0);
    coo.add(1, 0, 3.0);  // mirrored slot, different value
    coo.add(1, 1, 1.0);
    const auto s = io::analyze(coo.to_csr());
    EXPECT_TRUE(s.structurally_symmetric);
    EXPECT_FALSE(s.numerically_symmetric);
  }
}

TEST(MatrixStats, DiagonalCoverageCountsStoredAndNonZero) {
  sparse::CooMatrix coo(3, 3);
  coo.add(0, 0, 1.0);
  coo.add(1, 1, 0.0);  // structural zero on the diagonal
  coo.add(2, 1, 4.0);  // row 2 has no diagonal at all
  const auto s = io::analyze(coo.to_csr());
  EXPECT_EQ(s.diag_present, 2u);
  EXPECT_EQ(s.diag_nonzero, 1u);
}

TEST(MatrixStats, PaddingEstimatesMatchTheRealContainers) {
  // The advisor's numbers must be the numbers the converters would realize —
  // locked against sparse::Ell / sparse::Sell on assorted shapes.
  const sparse::CsrMatrix cases[] = {
      sparse::laplacian_2d(7, 9),
      sparse::random_spd(100, 7, 42),
      arrowhead(24),
  };
  for (const auto& a : cases) {
    const auto s = io::analyze(a);
    EXPECT_EQ(s.ell_padded_slots, sparse::EllMatrix::from_csr(a).values().size());
    const auto sell = sparse::SellMatrix::from_csr(a);
    EXPECT_EQ(s.sell_slice_height, sell.slice_height());
    EXPECT_EQ(s.sell_sort_window, sell.sort_window());
    EXPECT_EQ(s.sell_padded_slots, sell.values().size());
  }
}

TEST(MatrixStats, WideAnalysisMatchesNarrow) {
  const auto a = sparse::random_spd(60, 5, 3);
  const auto s32 = io::analyze(a);
  const auto s64 = io::analyze(sparse::Csr64Matrix::from_csr(a));
  EXPECT_EQ(s64.nnz, s32.nnz);
  EXPECT_EQ(s64.row_max, s32.row_max);
  EXPECT_EQ(s64.bandwidth, s32.bandwidth);
  EXPECT_EQ(s64.ell_padded_slots, s32.ell_padded_slots);
  EXPECT_EQ(s64.sell_padded_slots, s32.sell_padded_slots);
  EXPECT_EQ(s64.numerically_symmetric, s32.numerically_symmetric);
}

TEST(MatrixStats, PrintReportLabelsTheClampedTailBucketAsOpenRange) {
  // Regression: the clamped top bucket aggregates every row with
  // bit_width(len) >= kHistBuckets-1 but used to print as a closed [lo-hi]
  // range. A synthetic long-tail distribution: one row far past the last
  // bucket boundary plus many short rows.
  const std::size_t kTailLen = (std::size_t{1} << (io::MatrixStats::kHistBuckets - 2)) +
                               777;  // 2^14 + 777: deep inside the clamped bucket
  sparse::CooMatrix coo(4, kTailLen);
  for (std::size_t c = 0; c < kTailLen; ++c) coo.add(0, c, 1.0);
  coo.add(1, 0, 1.0);
  coo.add(2, 0, 1.0);
  coo.add(2, 1, 1.0);
  coo.add(3, 0, 1.0);
  const auto s = io::analyze(coo.to_csr());
  ASSERT_EQ(s.row_hist[io::MatrixStats::kHistBuckets - 1], 1u);

  std::ostringstream os;
  io::print_stats(os, s);
  const auto text = os.str();
  const std::string lo = std::to_string(std::size_t{1}
                                        << (io::MatrixStats::kHistBuckets - 2));
  EXPECT_NE(text.find("[" + lo + "+]:1"), std::string::npos)
      << "clamped tail must print as an open range: " << text;
  EXPECT_EQ(text.find("[" + lo + "-"), std::string::npos)
      << "clamped tail must not claim a closed upper bound: " << text;
}

TEST(MatrixStats, PrintReportMentionsTheHeadlines) {
  std::ostringstream os;
  io::print_stats(os, io::analyze(sparse::laplacian_2d(4, 4)));
  const auto text = os.str();
  EXPECT_NE(text.find("16 x 16"), std::string::npos);
  EXPECT_NE(text.find("ELL padding"), std::string::npos);
  EXPECT_NE(text.find("SELL padding"), std::string::npos);
  EXPECT_NE(text.find("numeric"), std::string::npos);
}

// --- Advisor: rule behaviour on synthetic shapes. ---

TEST(FormatAdvisor, UniformRowsGetEll) {
  const auto advice = io::advise_format(io::analyze(sparse::laplacian_2d(16, 16)));
  EXPECT_EQ(advice.format, MatrixFormat::ell);
  EXPECT_NE(advice.rationale.find("uniform"), std::string::npos);
}

TEST(FormatAdvisor, LongTailGetsCsr) {
  const auto advice = io::advise_format(io::analyze(arrowhead(24)));
  EXPECT_EQ(advice.format, MatrixFormat::csr);
  EXPECT_NE(advice.rationale.find("long-tailed"), std::string::npos);
}

TEST(FormatAdvisor, SkewedButSortableGetsSellWithParameters) {
  // Two row-length populations (8 and 2): ELL pads 60%, sigma-sorted SELL
  // packs them into separate slices with no waste.
  sparse::CooMatrix coo(32, 32);
  for (std::size_t i = 0; i < 16; ++i) {
    coo.add(i, i, 9.0);
    for (std::size_t k = 0; k < 7; ++k) coo.add(i, 16 + (i + k) % 16, -1.0);
  }
  for (std::size_t i = 16; i < 32; ++i) {
    coo.add(i, i, 3.0);
    coo.add(i, i - 16, -1.0);
  }
  const auto stats = io::analyze(coo.to_csr());
  EXPECT_GT(stats.ell_padding_overhead(), io::kPaddingBudget);
  EXPECT_LE(stats.sell_padding_overhead(), io::kPaddingBudget);
  const auto advice = io::advise_format(stats);
  ASSERT_EQ(advice.format, MatrixFormat::sell);
  EXPECT_EQ(advice.slice_height, stats.sell_slice_height);
  EXPECT_EQ(advice.sort_window, stats.sell_sort_window);
  EXPECT_NE(advice.rationale.find("sigma"), std::string::npos);
}

TEST(FormatAdvisor, EmptyMatrixDefaultsToCsr) {
  const auto advice = io::advise_format(io::analyze(sparse::CsrMatrix(4, 4)));
  EXPECT_EQ(advice.format, MatrixFormat::csr);
}

// --- Advisor: locked recommendations for every committed fixture. ---

struct FixtureAdvice {
  const char* file;
  MatrixFormat expected;
};

class FixtureAdvisorTest : public ::testing::TestWithParam<FixtureAdvice> {};

TEST_P(FixtureAdvisorTest, RecommendationIsLocked) {
  const auto [file, expected] = GetParam();
  const auto loaded = io::read_matrix_market(fixture(file));
  ASSERT_FALSE(loaded.wide());
  const auto advice = io::advise_format(io::analyze(loaded.a32));
  EXPECT_EQ(advice.format, expected) << file << ": " << advice.rationale;
  EXPECT_FALSE(advice.rationale.empty());
}

INSTANTIATE_TEST_SUITE_P(
    AllFixtures, FixtureAdvisorTest,
    ::testing::Values(FixtureAdvice{"spd_mini.mtx", MatrixFormat::ell},
                      FixtureAdvice{"pattern_sym.mtx", MatrixFormat::ell},
                      FixtureAdvice{"longtail.mtx", MatrixFormat::csr},
                      FixtureAdvice{"blocks.mtx", MatrixFormat::sell},
                      FixtureAdvice{"array_dense.mtx", MatrixFormat::ell}),
    [](const auto& info) {
      std::string name = info.param.file;
      return name.substr(0, name.find('.'));
    });

// --- Protection advisor: fault-rate and budget inputs folded into a full
// (format, scheme, interval, tile-slots) recommendation. advise_protection
// is a pure function of (stats, inputs), so these lock exact outputs. ---

TEST(ProtectionAdvisor, QuietMachineAmortisesWithCorrection) {
  const auto stats = io::analyze(sparse::laplacian_2d(16, 16));  // ell shape
  const auto a = io::advise_protection(stats, {});               // rate 0, budget 10%
  EXPECT_EQ(a.format.format, MatrixFormat::ell);
  EXPECT_EQ(a.scheme, ecc::Scheme::secded64);
  EXPECT_EQ(a.check_interval, 8u);
  EXPECT_EQ(a.tile_slots, 0u);
  EXPECT_NE(a.rationale.find("faults/Mcheck"), std::string::npos);
  EXPECT_NE(a.rationale.find("secded64"), std::string::npos);
  EXPECT_NE(a.rationale.find("corrects 1"), std::string::npos);
}

TEST(ProtectionAdvisor, TightBudgetBuysDetectOnlyAtWideIntervals) {
  const auto stats = io::analyze(sparse::laplacian_2d(16, 16));
  const auto a = io::advise_protection(stats, {.overhead_budget = 0.04});
  EXPECT_EQ(a.scheme, ecc::Scheme::sed);
  EXPECT_EQ(a.check_interval, 16u);
  EXPECT_NE(a.rationale.find("4.0%"), std::string::npos);
}

TEST(ProtectionAdvisor, ActiveRateTightensToEveryIteration) {
  const auto stats = io::analyze(sparse::laplacian_2d(16, 16));
  const auto mid = io::advise_protection(stats, {.faults_per_million_checks = 5.0});
  EXPECT_EQ(mid.scheme, ecc::Scheme::secded64);
  EXPECT_EQ(mid.check_interval, 2u);
  const auto hot = io::advise_protection(stats, {.faults_per_million_checks = 10.0});
  EXPECT_EQ(hot.scheme, ecc::Scheme::secded64);
  EXPECT_EQ(hot.check_interval, 1u);
}

TEST(ProtectionAdvisor, StormOnASlabGetsSmallTileCrc) {
  const auto stats = io::analyze(sparse::laplacian_2d(16, 16));
  const auto a = io::advise_protection(stats, {.faults_per_million_checks = 150.0});
  EXPECT_EQ(a.scheme, ecc::Scheme::crc32c_tile);
  EXPECT_EQ(a.check_interval, 1u);
  // 32-slot tiles keep the CRC inside its HD=6 span: detects 5-bit flips.
  EXPECT_EQ(a.tile_slots, 32u);
  EXPECT_NE(a.rationale.find("detects 5"), std::string::npos);
  EXPECT_NE(a.rationale.find("32-slot tiles"), std::string::npos);
}

TEST(ProtectionAdvisor, StormOnCsrGetsRowCrc) {
  const auto stats = io::analyze(arrowhead(24));  // csr shape
  const auto a = io::advise_protection(stats, {.faults_per_million_checks = 150.0});
  EXPECT_EQ(a.format.format, MatrixFormat::csr);
  EXPECT_EQ(a.scheme, ecc::Scheme::crc32c);  // no slab, no tiles
  EXPECT_EQ(a.tile_slots, 0u);
  EXPECT_EQ(a.check_interval, 1u);
}

TEST(ProtectionAdvisor, UncorrectableObservationTrumpsARateOfZero) {
  const auto stats = io::analyze(sparse::laplacian_2d(16, 16));
  const auto a = io::advise_protection(stats, {.saw_uncorrectable = true});
  EXPECT_EQ(a.scheme, ecc::Scheme::crc32c_tile);
  EXPECT_EQ(a.tile_slots, 32u);
  EXPECT_EQ(a.check_interval, 1u);
  EXPECT_NE(a.rationale.find("failed to repair"), std::string::npos);
}

// Locked full recommendations for the committed fixtures: the same inputs
// must keep producing the same (format, scheme, interval, tile-slots).
struct FixtureProtection {
  const char* file;
  io::ProtectionInputs inputs;
  MatrixFormat format;
  ecc::Scheme scheme;
  unsigned interval;
  std::size_t tile_slots;
};

class FixtureProtectionTest : public ::testing::TestWithParam<FixtureProtection> {};

TEST_P(FixtureProtectionTest, FullRecommendationIsLocked) {
  const auto& p = GetParam();
  const auto loaded = io::read_matrix_market(fixture(p.file));
  ASSERT_FALSE(loaded.wide());
  const auto a = io::advise_protection(io::analyze(loaded.a32), p.inputs);
  EXPECT_EQ(a.format.format, p.format) << a.rationale;
  EXPECT_EQ(a.scheme, p.scheme) << a.rationale;
  EXPECT_EQ(a.check_interval, p.interval) << a.rationale;
  EXPECT_EQ(a.tile_slots, p.tile_slots) << a.rationale;
  EXPECT_FALSE(a.rationale.empty());
}

INSTANTIATE_TEST_SUITE_P(
    AllFixtures, FixtureProtectionTest,
    ::testing::Values(
        FixtureProtection{"spd_mini.mtx", {}, MatrixFormat::ell,
                          ecc::Scheme::secded64, 8, 0},
        FixtureProtection{"spd_mini.mtx", {.faults_per_million_checks = 200.0},
                          MatrixFormat::ell, ecc::Scheme::crc32c_tile, 1, 32},
        FixtureProtection{"longtail.mtx", {.faults_per_million_checks = 200.0},
                          MatrixFormat::csr, ecc::Scheme::crc32c, 1, 0},
        FixtureProtection{"blocks.mtx", {.saw_uncorrectable = true},
                          MatrixFormat::sell, ecc::Scheme::crc32c_tile, 1, 32},
        FixtureProtection{"longtail.mtx", {.overhead_budget = 0.03},
                          MatrixFormat::csr, ecc::Scheme::sed, 16, 0}),
    [](const auto& info) {
      std::string name = info.param.file;
      return name.substr(0, name.find('.')) + "_" + std::to_string(info.index);
    });

}  // namespace
