// End-to-end ingestion pipeline: every committed fixture loads, protects,
// and CG-solves in all three storage formats with bit-identical residual
// histories; write-then-read reproduces the assembly exactly; campaigns can
// target loaded matrices.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "abft/abft.hpp"
#include "faults/campaign.hpp"
#include "io/io.hpp"
#include "solvers/cg.hpp"
#include "sparse/vector_ops.hpp"

namespace {

using namespace abft;

[[nodiscard]] std::string fixture(const char* name) {
  return std::string(ABFT_TEST_DATA_DIR) + "/" + name;
}

constexpr const char* kFixtures[] = {"spd_mini.mtx", "pattern_sym.mtx", "longtail.mtx",
                                     "blocks.mtx", "array_dense.mtx"};

struct SolveOutcome {
  std::vector<double> history;
  bool converged = false;
  double max_err = 0.0;  ///< max |u - 1| against the manufactured solution
};

/// Protect \p src in (format, width, uniform scheme), CG-solve A u = A * 1
/// for a fixed iteration budget, and return the residual history.
template <class Src>
SolveOutcome solve_on(const Src& src, MatrixFormat format, IndexWidth width,
                      ecc::Scheme scheme, unsigned iters, double tolerance = 0.0) {
  SolveOutcome out;
  dispatch_uniform_protection(
      format, width, scheme,
      [&]<class Fmt, class Index, class ES, class SS, class VS>() {
        using PM = typename Fmt::template protected_matrix<Index, ES, SS>;
        const auto a = Fmt::template make_plain<Index, ES>(src);
        const std::size_t n = a.nrows();
        aligned_vector<double> ones(n, 1.0), rhs(n, 0.0);
        sparse::spmv(a, ones.data(), rhs.data());

        auto pa = PM::from_plain(a);
        EXPECT_EQ(pa.verify_all(), 0u);
        ProtectedVector<VS> b(n), u(n);
        b.assign({rhs.data(), n});

        solvers::SolveOptions opts;
        opts.tolerance = tolerance;
        opts.max_iterations = iters;
        opts.residual_history = &out.history;
        const auto res = solvers::cg_solve(pa, b, u, opts);
        out.converged = res.converged;

        aligned_vector<double> got(n, 0.0);
        u.extract(got);
        for (std::size_t i = 0; i < n; ++i) {
          out.max_err = std::max(out.max_err, std::abs(got[i] - 1.0));
        }
      });
  return out;
}

class FixturePipelineTest : public ::testing::TestWithParam<const char*> {};

TEST_P(FixturePipelineTest, ResidualHistoriesBitIdenticalAcrossFormats) {
  const auto loaded = io::read_matrix_market(fixture(GetParam()),
                                             {.protected_assembly = true});
  ASSERT_FALSE(loaded.wide());
  for (const auto scheme : {ecc::Scheme::none, ecc::Scheme::secded64}) {
    const auto csr = solve_on(loaded.a32, MatrixFormat::csr, loaded.width, scheme, 25);
    ASSERT_FALSE(csr.history.empty());
    for (const auto format : {MatrixFormat::ell, MatrixFormat::sell}) {
      const auto other = solve_on(loaded.a32, format, loaded.width, scheme, 25);
      // Exact double equality: the three formats accumulate every row sum in
      // the same order, so the whole Krylov trajectory matches bit for bit.
      EXPECT_EQ(other.history, csr.history)
          << GetParam() << " format " << to_string(format) << " scheme "
          << ecc::to_string(scheme);
    }
  }
}

TEST_P(FixturePipelineTest, WriteThenReadReproducesTheMatrixExactly) {
  const auto loaded = io::read_matrix_market(fixture(GetParam()));
  ASSERT_FALSE(loaded.wide());
  std::stringstream ss;
  io::write_matrix_market(ss, loaded.a32);
  const auto back = io::read_matrix_market(ss);
  EXPECT_EQ(back.a32.row_ptr(), loaded.a32.row_ptr());
  EXPECT_EQ(back.a32.cols(), loaded.a32.cols());
  EXPECT_EQ(back.a32.values(), loaded.a32.values());
}

INSTANTIATE_TEST_SUITE_P(AllFixtures, FixturePipelineTest,
                         ::testing::ValuesIn(kFixtures), [](const auto& info) {
                           std::string name = info.param;
                           return name.substr(0, name.find('.'));
                         });

TEST(IoPipeline, SpdFixturesConvergeToTheManufacturedSolution) {
  for (const char* file : {"spd_mini.mtx", "longtail.mtx", "array_dense.mtx"}) {
    const auto loaded = io::read_matrix_market(fixture(file));
    for (const auto format : kAllFormats) {
      const auto out = solve_on(loaded.a32, format, IndexWidth::i32,
                                ecc::Scheme::secded64, 500, 1e-12);
      EXPECT_TRUE(out.converged) << file << " " << to_string(format);
      EXPECT_LT(out.max_err, 1e-8) << file << " " << to_string(format);
    }
  }
}

TEST(IoPipeline, WideSolveMatchesNarrowBitForBit) {
  const auto narrow = io::read_matrix_market(fixture("spd_mini.mtx"));
  const auto wide = io::read_matrix_market(fixture("spd_mini.mtx"),
                                           {.force_width = IndexWidth::i64});
  ASSERT_TRUE(wide.wide());
  for (const auto format : kAllFormats) {
    const auto h32 =
        solve_on(narrow.a32, format, IndexWidth::i32, ecc::Scheme::secded64, 25);
    const auto h64 =
        solve_on(wide.a64, format, IndexWidth::i64, ecc::Scheme::secded64, 25);
    EXPECT_EQ(h64.history, h32.history) << to_string(format);
  }
}

TEST(IoPipeline, CrcSchemesRunOnEveryFormat) {
  // The per-row CRC needs >= 4 slots; make_plain applies the per-format
  // remedy (CSR pads rows, ELL/SELL raise the slab/slice width), so even the
  // two-entry rows of the long-tail fixture protect cleanly.
  const auto loaded = io::read_matrix_market(fixture("longtail.mtx"));
  for (const auto format : kAllFormats) {
    const auto out =
        solve_on(loaded.a32, format, IndexWidth::i32, ecc::Scheme::crc32c, 200, 1e-12);
    EXPECT_TRUE(out.converged) << to_string(format);
    EXPECT_LT(out.max_err, 1e-8) << to_string(format);
  }
}

TEST(IoPipeline, CampaignTargetsALoadedMatrix) {
  const auto loaded = io::read_matrix_market(fixture("spd_mini.mtx"));
  for (const auto format : {MatrixFormat::csr, MatrixFormat::sell}) {
    faults::CampaignConfig cfg;
    cfg.matrix = &loaded.a32;
    cfg.format = format;
    cfg.scheme = ecc::Scheme::secded64;
    cfg.trials = 12;
    cfg.seed = 7;
    const auto r = faults::run_injection_campaign(cfg);
    EXPECT_EQ(r.trials, 12u);
    EXPECT_EQ(r.detected_corrected + r.detected_uncorrectable + r.bounds_caught +
                  r.benign + r.not_converged + r.sdc,
              r.trials)
        << to_string(format);
    // SECDED corrects every single flip it sees; nothing should be silent.
    EXPECT_EQ(r.sdc, 0u) << to_string(format);
  }
}

TEST(IoPipeline, CampaignStillValidatesTargetFormat) {
  const auto loaded = io::read_matrix_market(fixture("spd_mini.mtx"));
  faults::CampaignConfig cfg;
  cfg.matrix = &loaded.a32;
  cfg.format = MatrixFormat::csr;
  cfg.target = faults::Target::ell_values;  // wrong format for the target
  EXPECT_THROW((void)faults::run_injection_campaign(cfg), std::invalid_argument);
}

}  // namespace
