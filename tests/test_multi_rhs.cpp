// Batched multi-RHS kernel and solver semantics.
//
// The SpMM kernel promises each column's result is bit-identical to its
// independent SpMV while the matrix-region verification is charged exactly
// once per pass — for any k, any format, any scheme. The batched CG promises
// each column runs exactly cg_solve()'s op sequence (same bits, same
// per-request fault accounting) with converged columns frozen via the active
// mask. These suites pin all of that against sequentially-run references;
// the cross-thread-count invariance of the same observables lives in
// test_thread_determinism.cpp.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "abft/abft.hpp"
#include "common/rng.hpp"
#include "faults/injector.hpp"
#include "solvers/solvers.hpp"
#include "sparse/generators.hpp"
#include "sparse/transform.hpp"

namespace {

using namespace abft;

/// Snapshot of a FaultLog's observable state.
struct LogState {
  std::uint64_t checks = 0;
  std::uint64_t corrected = 0;
  std::uint64_t uncorrectable = 0;
  std::uint64_t bounds = 0;
  std::vector<FaultEvent> events;

  static LogState of(const FaultLog& log) {
    return {log.checks(), log.corrected(), log.uncorrectable(),
            log.bounds_violations(), log.events()};
  }
};

void expect_same_log(const LogState& got, const LogState& want, const char* what) {
  EXPECT_EQ(got.checks, want.checks) << what;
  EXPECT_EQ(got.corrected, want.corrected) << what;
  EXPECT_EQ(got.uncorrectable, want.uncorrectable) << what;
  EXPECT_EQ(got.bounds, want.bounds) << what;
  ASSERT_EQ(got.events.size(), want.events.size()) << what;
  for (std::size_t i = 0; i < got.events.size(); ++i) {
    EXPECT_EQ(got.events[i].region, want.events[i].region) << what << " event " << i;
    EXPECT_EQ(got.events[i].outcome, want.events[i].outcome) << what << " event " << i;
    EXPECT_EQ(got.events[i].index, want.events[i].index) << what << " event " << i;
  }
}

/// Deterministic per-column x data (column j always gets the same bits).
template <class VS>
std::vector<double> column_data(std::size_t n, std::size_t j) {
  Xoshiro256 rng(100 + j);
  std::vector<double> v(n);
  for (auto& e : v) e = VS::mask(rng.uniform(-2, 2));
  return v;
}

template <class VS>
[[nodiscard]] std::vector<std::uint64_t> bits_of(ProtectedVector<VS>& v) {
  std::vector<double> got(v.size());
  v.extract({got.data(), got.size()});
  std::vector<std::uint64_t> bits;
  bits.reserve(got.size());
  for (double e : got) bits.push_back(double_to_bits(e));
  return bits;
}

/// One column's independent full-check SpMV on a FRESH matrix (fresh matters:
/// correcting schemes repair storage in place), with its own logs.
struct SeqRun {
  std::vector<std::uint64_t> ybits;
  LogState mat, x;
};

template <class PM, class VS, class Plain, class CorruptM>
SeqRun sequential_spmv(const Plain& plain, std::size_t j, CorruptM&& corrupt_matrix) {
  FaultLog mlog, xlog;
  auto p = PM::from_plain(plain, &mlog, DuePolicy::record_only);
  corrupt_matrix(p);
  ProtectedVector<VS> x(plain.ncols(), &xlog, DuePolicy::record_only);
  ProtectedVector<VS> y(plain.nrows(), &xlog, DuePolicy::record_only);
  const auto xraw = column_data<VS>(plain.ncols(), j);
  x.assign({xraw.data(), xraw.size()});
  spmv(p, x, y);
  return {bits_of(y), LogState::of(mlog), LogState::of(xlog)};
}

/// The core SpMM contract against one (format, scheme, width) instance:
/// every column's y bits and x accounting equal its independent SpMV's, and
/// the batch's matrix log equals ONE single-pass log — not k of them.
template <class PM, class VS, class Plain, class CorruptM>
void expect_spmm_matches_sequential(const Plain& plain, std::size_t k,
                                    CorruptM&& corrupt_matrix) {
  FaultLog mlog;
  auto p = PM::from_plain(plain, &mlog, DuePolicy::record_only);
  corrupt_matrix(p);
  std::deque<FaultLog> xlogs(k);
  ProtectedMultiVector<VS> x(plain.ncols()), y(plain.nrows());
  for (std::size_t j = 0; j < k; ++j) {
    auto& xj = x.add_column(&xlogs[j], DuePolicy::record_only);
    y.add_column(&xlogs[j], DuePolicy::record_only);
    const auto xraw = column_data<VS>(plain.ncols(), j);
    xj.assign({xraw.data(), xraw.size()});
  }
  spmm(p, x, y, CheckMode::full);

  const LogState batch_mat = LogState::of(mlog);
  for (std::size_t j = 0; j < k; ++j) {
    SCOPED_TRACE("column " + std::to_string(j));
    const auto ref = sequential_spmv<PM, VS>(plain, j, corrupt_matrix);
    const auto got = bits_of(y.column(j));
    ASSERT_EQ(got.size(), ref.ybits.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i], ref.ybits[i]) << "y[" << i << "]";
    }
    expect_same_log(LogState::of(xlogs[j]), ref.x, "x column log");
    // Amortization: the whole batch was charged exactly one column's worth
    // of matrix checks, with the same outcomes and exemplars.
    expect_same_log(batch_mat, ref.mat, "matrix log vs one full pass");
  }
}

template <class PM>
void flip_value_bit(PM& p, std::size_t bit) {
  auto vals = p.raw_values();
  faults::flip_bit({reinterpret_cast<std::uint8_t*>(vals.data()), vals.size_bytes()},
                   bit);
}

TEST(MultiRhsSpmm, CsrSecdedMatchesSequentialClean) {
  const auto a = sparse::laplacian_2d(23, 17);
  using PM = ProtectedCsr<std::uint32_t, ElemSecded, RowSecded64>;
  expect_spmm_matches_sequential<PM, VecSecded64>(a, 5, [](auto&) {});
}

TEST(MultiRhsSpmm, CsrSecdedCorrectsMatrixFaultOnceForTheWholeBatch) {
  const auto a = sparse::laplacian_2d(23, 17);
  using PM = ProtectedCsr<std::uint32_t, ElemSecded, RowSecded64>;
  expect_spmm_matches_sequential<PM, VecSecded64>(a, 4, [](auto& p) {
    flip_value_bit(p, 64 * 900 + 21);  // corrected by the first column's pass
  });
}

TEST(MultiRhsSpmm, CsrCrc32cRowGranularMatchesSequential) {
  const auto a =
      sparse::pad_rows_to_min_nnz(sparse::laplacian_2d(23, 17), ElemCrc32c::kMinRowNnz);
  using PM = ProtectedCsr<std::uint32_t, ElemCrc32c, RowCrc32c>;
  expect_spmm_matches_sequential<PM, VecCrc32c>(a, 3, [](auto& p) {
    flip_value_bit(p, 64 * 512 + 7);
  });
}

TEST(MultiRhsSpmm, EllSedMatchesSequentialWithUncorrectableFault) {
  const auto a = sparse::Ell<std::uint32_t>::from_csr(sparse::laplacian_2d(16, 13));
  using PM = ProtectedEll<std::uint32_t, schemes::ElemSed<std::uint32_t>,
                          schemes::StructSed<std::uint32_t>>;
  expect_spmm_matches_sequential<PM, VecSed>(a, 4, [](auto& p) {
    flip_value_bit(p, 64 * 33 + 50);  // SED detects, cannot correct
  });
}

TEST(MultiRhsSpmm, EllTileMatchesSequential) {
  const auto a = sparse::Ell<std::uint32_t>::from_csr(sparse::laplacian_2d(12, 8),
                                                      ElemCrc32cTile::kMinRowNnz);
  using PM = ProtectedEll<std::uint32_t, schemes::ElemCrc32cTile<std::uint32_t>,
                          schemes::StructCrc32c<std::uint32_t>>;
  expect_spmm_matches_sequential<PM, VecNone>(a, 3, [](auto& p) {
    flip_value_bit(p, 64 * 70 + 13);
  });
}

TEST(MultiRhsSpmm, SellTileWideMatchesSequential) {
  const auto a = sparse::Sell<std::uint64_t>::from_csr(
      sparse::Csr<std::uint64_t>::from_csr(sparse::laplacian_2d(12, 9)),
      schemes::ElemCrc32cTile<std::uint64_t>::kMinRowNnz);
  using PM = ProtectedSell<std::uint64_t, schemes::ElemCrc32cTile<std::uint64_t>,
                           schemes::StructCrc32c<std::uint64_t>>;
  expect_spmm_matches_sequential<PM, VecNone>(a, 4, [](auto&) {});
}

TEST(MultiRhsSpmm, MatrixChecksDoNotScaleWithBatchSize) {
  // The amortization claim in one assertion: k = 1 and k = 8 charge the
  // matrix log identically.
  const auto a = sparse::laplacian_2d(23, 17);
  using PM = ProtectedCsr<std::uint32_t, ElemSecded, RowSecded64>;
  const auto matrix_checks_for = [&](std::size_t k) {
    FaultLog mlog;
    auto p = PM::from_plain(a, &mlog, DuePolicy::record_only);
    ProtectedMultiVector<VecSecded64> x(a.ncols(), k, nullptr,
                                        DuePolicy::record_only);
    ProtectedMultiVector<VecSecded64> y(a.nrows(), k, nullptr,
                                        DuePolicy::record_only);
    spmm(p, x, y, CheckMode::full);
    return mlog.checks();
  };
  const auto one = matrix_checks_for(1);
  EXPECT_GT(one, 0u);
  EXPECT_EQ(matrix_checks_for(8), one);
}

TEST(MultiRhsSpmm, ColumnFaultsStayInTheColumnsOwnLog) {
  const auto a = sparse::laplacian_2d(23, 17);
  using PM = ProtectedCsr<std::uint32_t, ElemNone, RowNone>;
  constexpr std::size_t k = 3;
  FaultLog mlog;
  auto p = PM::from_plain(a, &mlog, DuePolicy::record_only);
  std::deque<FaultLog> xlogs(k);
  ProtectedMultiVector<VecSecded64> x(a.ncols()), y(a.nrows());
  for (std::size_t j = 0; j < k; ++j) {
    auto& xj = x.add_column(&xlogs[j], DuePolicy::record_only);
    y.add_column(&xlogs[j], DuePolicy::record_only);
    const auto xraw = column_data<VecSecded64>(a.ncols(), j);
    xj.assign({xraw.data(), xraw.size()});
  }
  // Corrupt column 1 only.
  auto raw = x.column(1).raw();
  faults::flip_bit({reinterpret_cast<std::uint8_t*>(raw.data()), raw.size_bytes()},
                   64 * 5 + 17);
  spmm(p, x, y, CheckMode::full);
  EXPECT_EQ(xlogs[1].corrected(), 1u);
  for (std::size_t j : {std::size_t{0}, std::size_t{2}}) {
    EXPECT_EQ(xlogs[j].corrected(), 0u) << j;
    EXPECT_EQ(xlogs[j].uncorrectable(), 0u) << j;
    EXPECT_TRUE(xlogs[j].events().empty()) << j;
    EXPECT_EQ(xlogs[j].checks(), xlogs[0].checks()) << j;
  }
  // The corrected column still computes the right bits.
  const auto ref = sequential_spmv<PM, VecSecded64>(a, 1, [](auto&) {});
  const auto got = bits_of(y.column(1));
  ASSERT_EQ(got.size(), ref.ybits.size());
  for (std::size_t i = 0; i < got.size(); ++i) ASSERT_EQ(got[i], ref.ybits[i]) << i;
}

TEST(MultiRhsSpmm, ActiveMaskFreezesColumnsWithoutDisturbingTheRest) {
  const auto a = sparse::laplacian_2d(23, 17);
  using PM = ProtectedCsr<std::uint32_t, ElemSecded, RowSecded64>;
  constexpr std::size_t k = 3;
  FaultLog mlog;
  auto p = PM::from_plain(a, &mlog, DuePolicy::record_only);
  std::deque<FaultLog> xlogs(k);
  ProtectedMultiVector<VecSecded64> x(a.ncols()), y(a.nrows());
  for (std::size_t j = 0; j < k; ++j) {
    auto& xj = x.add_column(&xlogs[j], DuePolicy::record_only);
    y.add_column(&xlogs[j], DuePolicy::record_only);
    const auto xraw = column_data<VecSecded64>(a.ncols(), j);
    xj.assign({xraw.data(), xraw.size()});
  }
  const auto sentinel = column_data<VecSecded64>(a.nrows(), 77);
  y.column(1).assign({sentinel.data(), sentinel.size()});
  const auto frozen_before = bits_of(y.column(1));
  // assign() itself verifies, so the frozen column's log is not empty here —
  // the invariant is that the masked spmm adds *nothing* to it.
  const auto frozen_log_before = LogState::of(xlogs[1]);

  const std::vector<std::uint8_t> active{1, 0, 1};
  spmm(p, x, y, CheckMode::full, &active);

  // Frozen column: log untouched by the masked spmm (checked before bits_of,
  // whose extract() logs one check per group itself), output bits untouched.
  expect_same_log(LogState::of(xlogs[1]), frozen_log_before,
                  "frozen column log untouched by spmm");
  const auto frozen_after = bits_of(y.column(1));
  EXPECT_EQ(frozen_after, frozen_before);
  // Live columns match their sequential references; the matrix was still
  // charged exactly one pass.
  for (std::size_t j : {std::size_t{0}, std::size_t{2}}) {
    const auto ref = sequential_spmv<PM, VecSecded64>(a, j, [](auto&) {});
    const auto got = bits_of(y.column(j));
    ASSERT_EQ(got.size(), ref.ybits.size()) << j;
    for (std::size_t i = 0; i < got.size(); ++i) ASSERT_EQ(got[i], ref.ybits[i]) << i;
    expect_same_log(LogState::of(mlog), ref.mat, "matrix log vs one pass");
  }
}

TEST(MultiRhsSpmm, RejectsShapeMismatches) {
  const auto a = sparse::laplacian_2d(8, 8);
  using PM = ProtectedCsr<std::uint32_t, ElemNone, RowNone>;
  auto p = PM::from_plain(a);
  ProtectedMultiVector<VecNone> x(a.ncols(), 2), y(a.nrows(), 3);
  EXPECT_THROW(spmm(p, x, y), std::invalid_argument);
  ProtectedMultiVector<VecNone> y2(a.nrows(), 2);
  const std::vector<std::uint8_t> short_mask{1};
  EXPECT_THROW(spmm(p, x, y2, CheckMode::full, &short_mask), std::invalid_argument);
  ProtectedMultiVector<VecNone> xbad(a.ncols() + 1, 2);
  EXPECT_THROW(spmm(p, xbad, y2), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Batched CG vs k sequential cg_solve() runs.
// ---------------------------------------------------------------------------

TEST(MultiRhsCg, BatchSolveIsBitIdenticalToSequentialSolves) {
  const auto a = sparse::laplacian_2d(14, 14);
  using PM = ProtectedCsr<std::uint32_t, ElemSecded, RowSecded64>;
  constexpr std::size_t k = 4;
  solvers::SolveOptions opts;
  opts.tolerance = 1e-9;

  // Column 2 is b = 0 with u0 = 0: converged at iteration 0, frozen from the
  // start while its neighbours keep iterating.
  const auto b_data = [&](std::size_t j) {
    if (j == 2) return std::vector<double>(a.nrows(), 0.0);
    return column_data<VecSecded64>(a.nrows(), j);
  };

  // Batch run: per-request logs on every column.
  FaultLog mlog;
  auto p = PM::from_plain(a, &mlog, DuePolicy::record_only);
  std::deque<FaultLog> blogs(k), ulogs(k);
  ProtectedMultiVector<VecSecded64> b(a.nrows()), u(a.nrows());
  for (std::size_t j = 0; j < k; ++j) {
    auto& bj = b.add_column(&blogs[j], DuePolicy::record_only);
    u.add_column(&ulogs[j], DuePolicy::record_only);
    const auto braw = b_data(j);
    bj.assign({braw.data(), braw.size()});
  }
  solvers::ResidualHistories histories;
  const auto results = solvers::cg_solve_batch(p, b, u, opts, &histories);
  ASSERT_EQ(results.size(), k);
  ASSERT_EQ(histories.size(), k);

  for (std::size_t j = 0; j < k; ++j) {
    SCOPED_TRACE("column " + std::to_string(j));
    FaultLog smlog, sblog, sulog;
    auto sp = PM::from_plain(a, &smlog, DuePolicy::record_only);
    ProtectedVector<VecSecded64> sb(a.nrows(), &sblog, DuePolicy::record_only);
    ProtectedVector<VecSecded64> su(a.nrows(), &sulog, DuePolicy::record_only);
    const auto braw = b_data(j);
    sb.assign({braw.data(), braw.size()});
    solvers::SolveOptions sopts = opts;
    std::vector<double> history;
    sopts.residual_history = &history;
    const auto res = solvers::cg_solve(sp, sb, su, sopts);

    EXPECT_EQ(results[j].converged, res.converged);
    EXPECT_EQ(results[j].iterations, res.iterations);
    EXPECT_EQ(double_to_bits(results[j].residual_norm),
              double_to_bits(res.residual_norm));
    ASSERT_EQ(histories[j].size(), history.size());
    for (std::size_t i = 0; i < history.size(); ++i) {
      ASSERT_EQ(double_to_bits(histories[j][i]), double_to_bits(history[i])) << i;
    }
    const auto got = bits_of(u.column(j));
    const auto want = bits_of(su);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i], want[i]) << "u[" << i << "]";
    }
    // Per-request isolation: the batched column's b/u accounting equals the
    // standalone solve's (the amortized matrix checks land in the shared
    // matrix log, never in a tenant's).
    expect_same_log(LogState::of(blogs[j]), LogState::of(sblog), "b log");
    expect_same_log(LogState::of(ulogs[j]), LogState::of(sulog), "u log");
  }
  EXPECT_TRUE(results[2].converged);
  EXPECT_EQ(results[2].iterations, 0u);
}

TEST(MultiRhsCg, EmptyBatchAndSizeMismatch) {
  const auto a = sparse::laplacian_2d(6, 6);
  using PM = ProtectedCsr<std::uint32_t, ElemNone, RowNone>;
  auto p = PM::from_plain(a);
  ProtectedMultiVector<VecNone> b(a.nrows()), u(a.nrows());
  EXPECT_TRUE(solvers::cg_solve_batch(p, b, u).empty());
  ProtectedMultiVector<VecNone> b1(a.nrows(), 1), u2(a.nrows(), 2);
  EXPECT_THROW((void)solvers::cg_solve_batch(p, b1, u2), std::invalid_argument);
}

}  // namespace
