// sparse::Ell — the ELLPACK(-R) container: CSR round trips, the
// direct-from-stencil generator path, bit-identical SpMV against CSR, and
// structural validation.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "sparse/csr.hpp"
#include "sparse/ell.hpp"
#include "sparse/generators.hpp"

namespace {

using namespace abft;

TEST(Ell, FromCsrRoundTripsStencilMatrix) {
  const auto a = sparse::laplacian_2d(13, 9);
  const auto e = sparse::EllMatrix::from_csr(a);
  EXPECT_EQ(e.nrows(), a.nrows());
  EXPECT_EQ(e.ncols(), a.ncols());
  EXPECT_EQ(e.width(), 5u);  // interior rows of the 5-point stencil
  EXPECT_EQ(e.nnz(), a.nnz());
  e.validate();

  const auto back = e.to_csr();
  EXPECT_EQ(back.row_ptr(), a.row_ptr());
  EXPECT_EQ(back.cols(), a.cols());
  EXPECT_EQ(back.values(), a.values());
}

TEST(Ell, FromCsrRoundTripsIrregularMatrix) {
  const auto a = sparse::random_spd(200, 7, /*seed=*/3);
  const auto e = sparse::EllMatrix::from_csr(a);
  e.validate();
  const auto back = e.to_csr();
  EXPECT_EQ(back.row_ptr(), a.row_ptr());
  EXPECT_EQ(back.cols(), a.cols());
  EXPECT_EQ(back.values(), a.values());
}

TEST(Ell, MinWidthPadsSlabsNotRows) {
  const auto a = sparse::laplacian_2d(6, 6);
  const auto e = sparse::EllMatrix::from_csr(a, 8);
  EXPECT_EQ(e.width(), 8u);
  EXPECT_EQ(e.nnz(), a.nnz());  // padding slots are not non-zeros
  e.validate();
  const auto back = e.to_csr();
  EXPECT_EQ(back.values(), a.values());
}

TEST(Ell, DirectStencilGeneratorMatchesConversionPath) {
  // Degenerate meshes (nx or ny < 3) have narrower slabs; the direct
  // generator must clamp the width exactly as from_csr computes it.
  for (auto [nx, ny] :
       {std::pair<std::size_t, std::size_t>{11, 7}, {2, 2}, {1, 6}, {2, 3}, {1, 1}}) {
    const auto via_csr = sparse::EllMatrix::from_csr(sparse::laplacian_2d(nx, ny));
    const auto direct = sparse::ell_laplacian_2d(nx, ny);
    direct.validate();
    EXPECT_EQ(direct.width(), via_csr.width()) << nx << "x" << ny;
    EXPECT_EQ(direct.row_nnz(), via_csr.row_nnz()) << nx << "x" << ny;
    EXPECT_EQ(direct.cols(), via_csr.cols()) << nx << "x" << ny;
    EXPECT_EQ(direct.values(), via_csr.values()) << nx << "x" << ny;
  }
}

TEST(Ell, SpmvBitIdenticalToCsr) {
  for (auto [nx, ny] : {std::pair<std::size_t, std::size_t>{16, 16}, {31, 5}}) {
    const auto a = sparse::laplacian_2d(nx, ny);
    const auto e = sparse::EllMatrix::from_csr(a);
    Xoshiro256 rng(9);
    std::vector<double> x(a.ncols()), y_csr(a.nrows()), y_ell(a.nrows());
    for (auto& v : x) v = rng.uniform(-3, 3);
    sparse::spmv(a, x.data(), y_csr.data());
    sparse::spmv(e, x.data(), y_ell.data());
    for (std::size_t i = 0; i < a.nrows(); ++i) {
      EXPECT_EQ(y_csr[i], y_ell[i]) << i;  // exact: same accumulation order
    }
  }
}

TEST(Ell, SpmvBitIdenticalToCsrOnIrregularMatrix) {
  const auto a = sparse::random_spd(150, 5, /*seed=*/8);
  const auto e = sparse::EllMatrix::from_csr(a);
  Xoshiro256 rng(10);
  std::vector<double> x(a.ncols()), y_csr(a.nrows()), y_ell(a.nrows());
  for (auto& v : x) v = rng.uniform(-3, 3);
  sparse::spmv(a, x.data(), y_csr.data());
  sparse::spmv(e, x.data(), y_ell.data());
  for (std::size_t i = 0; i < a.nrows(); ++i) EXPECT_EQ(y_csr[i], y_ell[i]) << i;
}

TEST(Ell, WideIndexConversionAgrees) {
  const auto a32 = sparse::laplacian_2d(9, 9);
  const auto e64 = sparse::Ell64Matrix::from_csr(sparse::Csr64Matrix::from_csr(a32));
  const auto e32 = sparse::EllMatrix::from_csr(a32);
  ASSERT_EQ(e64.width(), e32.width());
  ASSERT_EQ(e64.values().size(), e32.values().size());
  for (std::size_t k = 0; k < e32.values().size(); ++k) {
    EXPECT_EQ(e64.values()[k], e32.values()[k]);
    EXPECT_EQ(e64.cols()[k], static_cast<std::uint64_t>(e32.cols()[k]));
  }
}

TEST(Ell, ValidateRejectsMalformedStructure) {
  auto e = sparse::ell_laplacian_2d(4, 4);
  e.row_nnz()[3] = 9;  // > width
  EXPECT_THROW(e.validate(), std::invalid_argument);

  auto e2 = sparse::ell_laplacian_2d(4, 4);
  e2.cols()[5] = 100;  // >= ncols (16)
  EXPECT_THROW(e2.validate(), std::invalid_argument);

  auto e3 = sparse::ell_laplacian_2d(4, 4);
  e3.cols().pop_back();  // slab size mismatch
  EXPECT_THROW(e3.validate(), std::invalid_argument);
}

TEST(Ell, AtLooksUpEntries) {
  const auto e = sparse::ell_laplacian_2d(5, 5);
  EXPECT_EQ(e.at(12, 12), 4.0);   // interior diagonal
  EXPECT_EQ(e.at(12, 11), -1.0);  // west neighbour
  EXPECT_EQ(e.at(12, 0), 0.0);    // structural zero
}

}  // namespace
