// Cross-thread-count determinism of the parallel protected kernels.
//
// The chunked SpMV, the fixed-order dot and the claim-table tile protocol
// promise that results, fault-log contents and check accounting are
// bit-identical at any OMP thread count — faults included, even faults that
// land in a tile straddling two 64-row chunks. The OpenMP suites below pin
// the thread count to 1, 2, 4 and 7 in turn (7 deliberately does not divide
// the chunk counts) and compare every observable against the 1-thread run.
//
// The ThreadStress suites at the bottom drive the synchronization primitives
// themselves (TileClaimTable, ErrorCapture::merge_from, CorrectedOnce) with
// raw std::thread — no OpenMP — so a ThreadSanitizer build can watch the
// exact acquire/release handshakes the kernels rely on without libgomp's
// uninstrumented internals drowning the report in false positives.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "abft/abft.hpp"
#include "abft/error_capture.hpp"
#include "abft/tile_check.hpp"
#include "common/rng.hpp"
#include "faults/injector.hpp"
#include "obs/metrics.hpp"
#include "service/batch_queue.hpp"
#include "solvers/solvers.hpp"
#include "sparse/generators.hpp"
#include "sparse/transform.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace {

using namespace abft;

// ---------------------------------------------------------------------------
// std::thread stress tests of the kernel synchronization primitives.
// ---------------------------------------------------------------------------

constexpr int kStressThreads = 8;

void run_threads(int nthreads, const std::function<void(int)>& body) {
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(nthreads));
  for (int t = 0; t < nthreads; ++t) workers.emplace_back(body, t);
  for (auto& w : workers) w.join();
}

TEST(ThreadStress, TileClaimTableElectsExactlyOneWinnerPerTile) {
  constexpr std::size_t kTiles = 64;
  for (int rep = 0; rep < 100; ++rep) {
    TileClaimTable table(kTiles);
    std::vector<std::atomic<int>> winners(kTiles);
    // One payload slot per tile stands in for the decoded tile bytes: the
    // claim winner writes it before publish(), everyone else must observe
    // the write after wait_done() — the handshake TileVerifier depends on
    // for corrections to be visible across chunks.
    std::vector<int> payload(kTiles, 0);
    std::atomic<int> stale_reads{0};
    run_threads(kStressThreads, [&](int) {
      for (std::size_t t = 0; t < kTiles; ++t) {
        if (table.claim(t)) {
          payload[t] = 1;
          winners[t].fetch_add(1, std::memory_order_relaxed);
          table.publish(t);
        } else {
          table.wait_done(t);
          if (payload[t] != 1) stale_reads.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
    for (std::size_t t = 0; t < kTiles; ++t) {
      ASSERT_EQ(winners[t].load(), 1) << "tile " << t << " rep " << rep;
    }
    ASSERT_EQ(stale_reads.load(), 0) << "rep " << rep;
  }
}

TEST(ThreadStress, CorrectedOnceClaimsEachGroupExactlyOnce) {
  constexpr std::size_t kGroups = 200;
  for (int rep = 0; rep < 20; ++rep) {
    CorrectedOnce once;
    std::vector<std::atomic<int>> granted(kGroups);
    run_threads(kStressThreads, [&](int) {
      for (std::size_t g = 0; g < kGroups; ++g) {
        if (once.claim(g)) granted[g].fetch_add(1, std::memory_order_relaxed);
      }
    });
    for (std::size_t g = 0; g < kGroups; ++g) {
      ASSERT_EQ(granted[g].load(), 1) << "group " << g << " rep " << rep;
    }
  }
}

/// Snapshot of a FaultLog's observable state after a kernel pass.
struct LogState {
  std::uint64_t checks = 0;
  std::uint64_t corrected = 0;
  std::uint64_t uncorrectable = 0;
  std::uint64_t bounds = 0;
  std::vector<FaultEvent> events;

  static LogState of(const FaultLog& log) {
    return {log.checks(), log.corrected(), log.uncorrectable(),
            log.bounds_violations(), log.events()};
  }
};

void expect_same_log(const LogState& got, const LogState& want, const char* what) {
  EXPECT_EQ(got.checks, want.checks) << what;
  EXPECT_EQ(got.corrected, want.corrected) << what;
  EXPECT_EQ(got.uncorrectable, want.uncorrectable) << what;
  EXPECT_EQ(got.bounds, want.bounds) << what;
  ASSERT_EQ(got.events.size(), want.events.size()) << what;
  for (std::size_t i = 0; i < got.events.size(); ++i) {
    EXPECT_EQ(got.events[i].region, want.events[i].region) << what << " event " << i;
    EXPECT_EQ(got.events[i].outcome, want.events[i].outcome) << what << " event " << i;
    EXPECT_EQ(got.events[i].index, want.events[i].index) << what << " event " << i;
  }
}

TEST(ThreadStress, ErrorCaptureConcurrentMergeMatchesSerialFold) {
  // Per-thread captures with distinct exemplar indices, merged concurrently
  // into one shared capture: counters must sum exactly and the committed
  // exemplar must be the global minimum key, independent of merge order.
  for (int rep = 0; rep < 50; ++rep) {
    ErrorCapture shared;
    run_threads(kStressThreads, [&](int t) {
      ErrorCapture local;
      local.add_checks(static_cast<std::uint64_t>(t) + 1);
      // Thread t's first fault sits at index 1000 - 100*t: the *last*
      // thread holds the global minimum, so first-writer-wins would get
      // this wrong whenever thread 0 merges first.
      local.record(Region::csr_values, CheckOutcome::uncorrectable,
                   1000 - 100 * static_cast<std::size_t>(t));
      local.record(Region::ell_values, CheckOutcome::corrected,
                   500 + static_cast<std::size_t>(t));
      shared.merge_from(local);
    });
    FaultLog log;
    shared.commit(&log, DuePolicy::record_only);
    EXPECT_EQ(log.checks(), std::uint64_t{kStressThreads} * (kStressThreads + 1) / 2);
    EXPECT_EQ(log.uncorrectable(), std::uint64_t{kStressThreads});
    EXPECT_EQ(log.corrected(), std::uint64_t{kStressThreads});
    const auto events = log.events();
    ASSERT_FALSE(events.empty());
    // The exemplar (first event of each outcome) carries the minimum key.
    bool saw_min_unc = false, saw_min_corr = false;
    for (const auto& e : events) {
      if (e.region == Region::csr_values) {
        EXPECT_EQ(e.index, 1000 - 100 * (kStressThreads - 1));
        saw_min_unc = true;
      }
      if (e.region == Region::ell_values) {
        EXPECT_EQ(e.index, 500u);
        saw_min_corr = true;
      }
    }
    EXPECT_TRUE(saw_min_unc);
    EXPECT_TRUE(saw_min_corr);
  }
}

// The solve service's request queue, hammered with raw std::thread producers
// and consumers (the TSan job's target): every pushed request must be
// delivered exactly once, in batches of bounded size, and close() must drain
// cleanly.
TEST(ThreadStress, BatchQueueDeliversEveryRequestExactlyOnce) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 2000;
  constexpr std::size_t kTotal =
      static_cast<std::size_t>(kProducers) * kPerProducer;
  for (int rep = 0; rep < 5; ++rep) {
    service::BatchQueue<int> queue(64);  // small capacity: pushes must block
    std::vector<std::atomic<int>> delivered(kTotal);
    std::atomic<int> produced{0};

    std::vector<std::thread> workers;
    for (int p = 0; p < kProducers; ++p) {
      workers.emplace_back([&, p] {
        for (int i = 0; i < kPerProducer; ++i) {
          ASSERT_TRUE(queue.push(p * kPerProducer + i));
        }
        if (produced.fetch_add(1) + 1 == kProducers) queue.close();
      });
    }
    for (int c = 0; c < kConsumers; ++c) {
      workers.emplace_back([&, c] {
        // Varying batch sizes across consumers exercises partial drains.
        const std::size_t max_batch = static_cast<std::size_t>(1) << c;
        while (true) {
          const auto batch = queue.pop_batch(max_batch);
          if (batch.empty()) break;  // closed and drained
          ASSERT_LE(batch.size(), max_batch);
          for (int id : batch) {
            delivered[static_cast<std::size_t>(id)].fetch_add(
                1, std::memory_order_relaxed);
          }
        }
      });
    }
    for (auto& w : workers) w.join();

    for (std::size_t i = 0; i < kTotal; ++i) {
      ASSERT_EQ(delivered[i].load(), 1) << "request " << i << " rep " << rep;
    }
    EXPECT_EQ(queue.size(), 0u);
    EXPECT_FALSE(queue.push(-1)) << "pushes after close must fail";
    EXPECT_TRUE(queue.pop_batch(8).empty());
  }
}

#ifdef _OPENMP

// ---------------------------------------------------------------------------
// OpenMP cross-thread-count determinism: every observable of a protected
// kernel pass — result bits, fault-log contents, check counts — must be
// identical at 1, 2, 4 and 7 threads.
// ---------------------------------------------------------------------------

const std::vector<int> kThreadCounts{1, 2, 4, 7};

/// RAII guard restoring the ambient OMP thread count.
struct ThreadCountGuard {
  int saved = omp_get_max_threads();
  ~ThreadCountGuard() { omp_set_num_threads(saved); }
};

/// Everything observable from one SpMV pass.
struct SpmvRun {
  std::vector<std::uint64_t> ybits;
  LogState mat, vec;
};

void expect_same_run(const SpmvRun& got, const SpmvRun& want, int nthreads) {
  ASSERT_EQ(got.ybits.size(), want.ybits.size());
  for (std::size_t i = 0; i < got.ybits.size(); ++i) {
    ASSERT_EQ(got.ybits[i], want.ybits[i]) << "y[" << i << "] at " << nthreads
                                           << " threads";
  }
  expect_same_log(got.mat, want.mat, "matrix log");
  expect_same_log(got.vec, want.vec, "vector log");
}

/// Build the protected matrix fresh, apply \p corrupt to it and the x vector,
/// run one full-mode SpMV and snapshot all observables. Fresh construction
/// per run matters: correcting schemes repair storage in place.
template <class PM, class VS, class Plain, class Corrupt>
SpmvRun run_spmv(const Plain& plain, Corrupt&& corrupt) {
  FaultLog mlog, xlog;
  auto p = PM::from_plain(plain, &mlog, DuePolicy::record_only);
  ProtectedVector<VS> x(plain.ncols(), &xlog, DuePolicy::record_only);
  ProtectedVector<VS> y(plain.nrows(), &xlog, DuePolicy::record_only);
  Xoshiro256 rng(17);
  std::vector<double> xraw(plain.ncols());
  for (auto& v : xraw) v = VS::mask(rng.uniform(-2, 2));
  x.assign({xraw.data(), xraw.size()});
  corrupt(p, x);
  spmv(p, x, y);
  SpmvRun run;
  std::vector<double> got(plain.nrows());
  y.extract({got.data(), got.size()});
  run.ybits.reserve(got.size());
  for (double v : got) run.ybits.push_back(double_to_bits(v));
  run.mat = LogState::of(mlog);
  run.vec = LogState::of(xlog);
  return run;
}

template <class PM, class VS, class Plain, class Corrupt>
void expect_thread_count_invariant_spmv(const Plain& plain, Corrupt&& corrupt) {
  ThreadCountGuard guard;
  omp_set_num_threads(1);
  const SpmvRun reference = run_spmv<PM, VS>(plain, corrupt);
  EXPECT_GT(reference.mat.checks + reference.vec.checks, 0u)
      << "suite must exercise the accounting path";
  for (int nthreads : kThreadCounts) {
    omp_set_num_threads(nthreads);
    const SpmvRun run = run_spmv<PM, VS>(plain, corrupt);
    expect_same_run(run, reference, nthreads);
  }
}

/// Flip bit \p bit of a protected matrix's value slab.
template <class PM>
void flip_value_bit(PM& p, std::size_t bit) {
  auto vals = p.raw_values();
  faults::flip_bit({reinterpret_cast<std::uint8_t*>(vals.data()), vals.size_bytes()},
                   bit);
}

TEST(ThreadDeterminism, CsrSecdedCleanAndFaulty) {
  // 851 rows: 14 chunks, the last one ragged.
  const auto a = sparse::laplacian_2d(37, 23);
  using PM = ProtectedCsr<std::uint32_t, ElemSecded, RowSecded64>;
  expect_thread_count_invariant_spmv<PM, VecSecded64>(a, [](auto&, auto&) {});
  expect_thread_count_invariant_spmv<PM, VecSecded64>(a, [](auto& p, auto&) {
    flip_value_bit(p, 64 * 1000 + 19);  // corrected mid-matrix
    flip_value_bit(p, 64 * 2500 + 3);   // second fault, different chunk
  });
}

TEST(ThreadDeterminism, CsrSedUncorrectableFaults) {
  const auto a = sparse::laplacian_2d(37, 23);
  using PM = ProtectedCsr<std::uint32_t, ElemSed, RowSed>;
  expect_thread_count_invariant_spmv<PM, VecSed>(a, [](auto& p, auto&) {
    flip_value_bit(p, 64 * 700 + 11);
    flip_value_bit(p, 64 * 3100 + 42);
  });
}

TEST(ThreadDeterminism, CsrCrc32cRowGranular) {
  const auto a =
      sparse::pad_rows_to_min_nnz(sparse::laplacian_2d(37, 23), ElemCrc32c::kMinRowNnz);
  using PM = ProtectedCsr<std::uint32_t, ElemCrc32c, RowCrc32c>;
  expect_thread_count_invariant_spmv<PM, VecNone>(a, [](auto& p, auto&) {
    flip_value_bit(p, 64 * 1800 + 27);
  });
}

TEST(ThreadDeterminism, EllSecdedBatchPathCleanAndFaulty) {
  const auto a = sparse::Ell<std::uint32_t>::from_csr(sparse::laplacian_2d(16, 13));
  using PM = ProtectedEll<std::uint32_t, schemes::ElemSecded<std::uint32_t>,
                          schemes::StructSecded<std::uint32_t>>;
  expect_thread_count_invariant_spmv<PM, VecSecded64>(a, [](auto&, auto&) {});
  expect_thread_count_invariant_spmv<PM, VecSecded64>(a, [](auto& p, auto&) {
    // Knock one slab column dirty so the batch predicate's per-element
    // fallback runs under every thread count.
    flip_value_bit(p, 64 * 70 + 9);
  });
}

TEST(ThreadDeterminism, EllSedBatchPathFaulty) {
  const auto a = sparse::Ell<std::uint32_t>::from_csr(sparse::laplacian_2d(16, 13));
  using PM = ProtectedEll<std::uint32_t, schemes::ElemSed<std::uint32_t>,
                          schemes::StructSed<std::uint32_t>>;
  expect_thread_count_invariant_spmv<PM, VecSed>(a, [](auto& p, auto&) {
    flip_value_bit(p, 64 * 33 + 50);
  });
}

TEST(ThreadDeterminism, EllTileFaultStraddlingChunkBoundary) {
  // 96 rows = two 64-row chunks (the second ragged). Slab slot 70 lies in
  // tile 1, which spans slots [64, 160): rows 64..95 of slab column 0 plus
  // rows 0..63 of column 1 — i.e. the tile is shared by both chunks, the
  // exact case the claim table arbitrates.
  const auto a = sparse::Ell<std::uint32_t>::from_csr(
      sparse::laplacian_2d(12, 8), ElemCrc32cTile::kMinRowNnz);
  ASSERT_EQ(a.nrows(), 96u);
  using PM = ProtectedEll<std::uint32_t, schemes::ElemCrc32cTile<std::uint32_t>,
                          schemes::StructCrc32c<std::uint32_t>>;
  expect_thread_count_invariant_spmv<PM, VecNone>(a, [](auto& p, auto&) {
    flip_value_bit(p, 64 * 70 + 13);
  });
  // And a double fault: one per chunk-straddling tile region.
  expect_thread_count_invariant_spmv<PM, VecNone>(a, [](auto& p, auto&) {
    flip_value_bit(p, 64 * 70 + 13);
    flip_value_bit(p, 64 * 130 + 7);
  });
}

TEST(ThreadDeterminism, SellTileFaults) {
  const auto a = sparse::Sell<std::uint32_t>::from_csr(
      sparse::laplacian_2d(12, 9), ElemCrc32cTile::kMinRowNnz);
  using PM = ProtectedSell<std::uint32_t, schemes::ElemCrc32cTile<std::uint32_t>,
                           schemes::StructCrc32c<std::uint32_t>>;
  expect_thread_count_invariant_spmv<PM, VecNone>(a, [](auto&, auto&) {});
  expect_thread_count_invariant_spmv<PM, VecNone>(a, [](auto& p, auto&) {
    flip_value_bit(p, 64 * 50 + 21);
  });
}

TEST(ThreadDeterminism, XVectorCorrectionRecordedOnce) {
  // A fault in the shared x vector: multiple chunks read the same faulty
  // group, but CorrectedOnce must keep the log identical to the serial run
  // (exactly one corrected record) at every thread count.
  const auto a = sparse::laplacian_2d(37, 23);
  using PM = ProtectedCsr<std::uint32_t, ElemNone, RowNone>;
  expect_thread_count_invariant_spmv<PM, VecSecded64>(a, [](auto&, auto& x) {
    auto raw = x.raw();
    faults::flip_bit({reinterpret_cast<std::uint8_t*>(raw.data()), raw.size_bytes()},
                     64 * 3 + 17);
  });
}

TEST(ThreadDeterminism, DotIsBitwiseThreadCountInvariant) {
  ThreadCountGuard guard;
  const std::size_t n = 10'000;
  Xoshiro256 rng(23);
  std::vector<double> araw(n), braw(n);
  for (std::size_t i = 0; i < n; ++i) {
    araw[i] = VecSed::mask(rng.uniform(-5, 5));
    braw[i] = VecSed::mask(rng.uniform(-5, 5));
  }
  omp_set_num_threads(1);
  const auto run_dot = [&] {
    ProtectedVector<VecSed> pa(n), pb(n);
    pa.assign({araw.data(), n});
    pb.assign({braw.data(), n});
    return dot(pa, pb);
  };
  const double reference = run_dot();
  for (int nthreads : kThreadCounts) {
    omp_set_num_threads(nthreads);
    EXPECT_EQ(double_to_bits(run_dot()), double_to_bits(reference)) << nthreads;
  }
}

TEST(ThreadDeterminism, CgSolveIsBitwiseThreadCountInvariant) {
  ThreadCountGuard guard;
  const auto a = sparse::laplacian_2d(20, 20);
  struct CgRun {
    std::vector<std::uint64_t> ubits;
    std::vector<double> residuals;
    unsigned iterations = 0;
    LogState mat;
  };
  const auto run_cg = [&] {
    FaultLog mlog, vlog;
    auto pa = ProtectedCsr<std::uint32_t, ElemSecded, RowSecded64>::from_csr(
        a, &mlog, DuePolicy::record_only);
    ProtectedVector<VecSecded64> b(a.nrows(), &vlog, DuePolicy::record_only);
    ProtectedVector<VecSecded64> u(a.nrows(), &vlog, DuePolicy::record_only);
    fill(b, 1.0);
    fill(u, 0.0);
    solvers::SolveOptions opts;
    opts.tolerance = 1e-9;
    CgRun run;
    opts.residual_history = &run.residuals;
    const auto res = solvers::cg_solve(pa, b, u, opts);
    EXPECT_TRUE(res.converged);
    run.iterations = res.iterations;
    std::vector<double> got(a.nrows());
    u.extract({got.data(), got.size()});
    for (double v : got) run.ubits.push_back(double_to_bits(v));
    run.mat = LogState::of(mlog);
    return run;
  };
  omp_set_num_threads(1);
  const CgRun reference = run_cg();
  for (int nthreads : kThreadCounts) {
    omp_set_num_threads(nthreads);
    const CgRun run = run_cg();
    EXPECT_EQ(run.iterations, reference.iterations) << nthreads;
    ASSERT_EQ(run.ubits.size(), reference.ubits.size());
    for (std::size_t i = 0; i < run.ubits.size(); ++i) {
      ASSERT_EQ(run.ubits[i], reference.ubits[i]) << "u[" << i << "] at " << nthreads
                                                  << " threads";
    }
    ASSERT_EQ(run.residuals.size(), reference.residuals.size()) << nthreads;
    for (std::size_t i = 0; i < run.residuals.size(); ++i) {
      ASSERT_EQ(double_to_bits(run.residuals[i]), double_to_bits(reference.residuals[i]))
          << "residual " << i << " at " << nthreads << " threads";
    }
    expect_same_log(run.mat, reference.mat, "cg matrix log");
  }
}

// ---------------------------------------------------------------------------
// Multi-RHS leg: the batched kernels keep the same promise — y bits, fault
// logs and check counts of every column, plus the once-per-pass matrix
// accounting, are identical at 1, 2, 4 and 7 threads and equal to k
// sequential runs (the sequential equivalence itself is pinned per-format in
// test_multi_rhs.cpp; here it anchors the 1-thread reference).
// ---------------------------------------------------------------------------

/// Everything observable from one SpMM pass.
struct SpmmRun {
  std::vector<std::vector<std::uint64_t>> ybits;  // per column
  LogState mat;
  std::vector<LogState> xlogs;  // per column
};

template <class PM, class VS, class Plain, class Corrupt>
SpmmRun run_spmm(const Plain& plain, std::size_t k, Corrupt&& corrupt) {
  FaultLog mlog;
  auto p = PM::from_plain(plain, &mlog, DuePolicy::record_only);
  std::deque<FaultLog> xlogs(k);
  ProtectedMultiVector<VS> x(plain.ncols()), y(plain.nrows());
  Xoshiro256 rng(29);
  for (std::size_t j = 0; j < k; ++j) {
    auto& xj = x.add_column(&xlogs[j], DuePolicy::record_only);
    y.add_column(&xlogs[j], DuePolicy::record_only);
    std::vector<double> xraw(plain.ncols());
    for (auto& v : xraw) v = VS::mask(rng.uniform(-2, 2));
    xj.assign({xraw.data(), xraw.size()});
  }
  corrupt(p, x);
  spmm(p, x, y, CheckMode::full);
  SpmmRun run;
  run.mat = LogState::of(mlog);
  for (std::size_t j = 0; j < k; ++j) {
    std::vector<double> got(plain.nrows());
    y.column(j).extract({got.data(), got.size()});
    std::vector<std::uint64_t> bits;
    bits.reserve(got.size());
    for (double v : got) bits.push_back(double_to_bits(v));
    run.ybits.push_back(std::move(bits));
    run.xlogs.push_back(LogState::of(xlogs[j]));
  }
  return run;
}

template <class PM, class VS, class Plain, class Corrupt>
void expect_thread_count_invariant_spmm(const Plain& plain, std::size_t k,
                                        Corrupt&& corrupt) {
  ThreadCountGuard guard;
  omp_set_num_threads(1);
  const SpmmRun reference = run_spmm<PM, VS>(plain, k, corrupt);
  EXPECT_GT(reference.mat.checks, 0u) << "suite must exercise the accounting path";
  for (int nthreads : kThreadCounts) {
    omp_set_num_threads(nthreads);
    const SpmmRun run = run_spmm<PM, VS>(plain, k, corrupt);
    ASSERT_EQ(run.ybits.size(), reference.ybits.size());
    for (std::size_t j = 0; j < run.ybits.size(); ++j) {
      ASSERT_EQ(run.ybits[j].size(), reference.ybits[j].size());
      for (std::size_t i = 0; i < run.ybits[j].size(); ++i) {
        ASSERT_EQ(run.ybits[j][i], reference.ybits[j][i])
            << "column " << j << " y[" << i << "] at " << nthreads << " threads";
      }
      expect_same_log(run.xlogs[j], reference.xlogs[j], "x column log");
    }
    expect_same_log(run.mat, reference.mat, "matrix log");
  }
}

TEST(ThreadDeterminism, SpmmCsrSecdedWithMatrixAndColumnFaults) {
  const auto a = sparse::laplacian_2d(37, 23);
  using PM = ProtectedCsr<std::uint32_t, ElemSecded, RowSecded64>;
  expect_thread_count_invariant_spmm<PM, VecSecded64>(a, 4, [](auto&, auto&) {});
  expect_thread_count_invariant_spmm<PM, VecSecded64>(a, 4, [](auto& p, auto& x) {
    flip_value_bit(p, 64 * 1000 + 19);  // corrected by the single full pass
    // Plus a fault in one column's x: CorrectedOnce keeps that column's log
    // serial-identical while the other columns stay clean.
    auto raw = x.column(2).raw();
    faults::flip_bit({reinterpret_cast<std::uint8_t*>(raw.data()), raw.size_bytes()},
                     64 * 3 + 17);
  });
}

TEST(ThreadDeterminism, SpmmEllTileFaultStraddlingChunkBoundary) {
  const auto a = sparse::Ell<std::uint32_t>::from_csr(sparse::laplacian_2d(12, 8),
                                                      ElemCrc32cTile::kMinRowNnz);
  using PM = ProtectedEll<std::uint32_t, schemes::ElemCrc32cTile<std::uint32_t>,
                          schemes::StructCrc32c<std::uint32_t>>;
  expect_thread_count_invariant_spmm<PM, VecNone>(a, 3, [](auto& p, auto&) {
    flip_value_bit(p, 64 * 70 + 13);  // tile shared by two chunks
  });
}

TEST(ThreadDeterminism, CgSolveBatchIsBitwiseThreadCountInvariant) {
  ThreadCountGuard guard;
  const auto a = sparse::laplacian_2d(20, 20);
  constexpr std::size_t k = 3;
  struct BatchRun {
    std::vector<std::vector<std::uint64_t>> ubits;
    std::vector<unsigned> iterations;
    solvers::ResidualHistories histories;
    LogState mat;
  };
  const auto run_batch = [&] {
    FaultLog mlog;
    auto p = ProtectedCsr<std::uint32_t, ElemSecded, RowSecded64>::from_csr(
        a, &mlog, DuePolicy::record_only);
    std::deque<FaultLog> vlogs(k);
    ProtectedMultiVector<VecSecded64> b(a.nrows()), u(a.nrows());
    Xoshiro256 rng(37);
    for (std::size_t j = 0; j < k; ++j) {
      auto& bj = b.add_column(&vlogs[j], DuePolicy::record_only);
      u.add_column(&vlogs[j], DuePolicy::record_only);
      std::vector<double> braw(a.nrows());
      for (auto& v : braw) v = VecSecded64::mask(rng.uniform(-1, 1));
      bj.assign({braw.data(), braw.size()});
    }
    solvers::SolveOptions opts;
    opts.tolerance = 1e-9;
    BatchRun run;
    const auto results = solvers::cg_solve_batch(p, b, u, opts, &run.histories);
    for (std::size_t j = 0; j < k; ++j) {
      EXPECT_TRUE(results[j].converged) << j;
      run.iterations.push_back(results[j].iterations);
      std::vector<double> got(a.nrows());
      u.column(j).extract({got.data(), got.size()});
      std::vector<std::uint64_t> bits;
      for (double v : got) bits.push_back(double_to_bits(v));
      run.ubits.push_back(std::move(bits));
    }
    run.mat = LogState::of(mlog);
    return run;
  };
  omp_set_num_threads(1);
  const BatchRun reference = run_batch();
  for (int nthreads : kThreadCounts) {
    omp_set_num_threads(nthreads);
    const BatchRun run = run_batch();
    for (std::size_t j = 0; j < k; ++j) {
      EXPECT_EQ(run.iterations[j], reference.iterations[j])
          << "column " << j << " at " << nthreads << " threads";
      ASSERT_EQ(run.ubits[j].size(), reference.ubits[j].size());
      for (std::size_t i = 0; i < run.ubits[j].size(); ++i) {
        ASSERT_EQ(run.ubits[j][i], reference.ubits[j][i])
            << "column " << j << " u[" << i << "] at " << nthreads << " threads";
      }
      ASSERT_EQ(run.histories[j].size(), reference.histories[j].size()) << j;
      for (std::size_t i = 0; i < run.histories[j].size(); ++i) {
        ASSERT_EQ(double_to_bits(run.histories[j][i]),
                  double_to_bits(reference.histories[j][i]))
            << "column " << j << " residual " << i << " at " << nthreads
            << " threads";
      }
    }
    expect_same_log(run.mat, reference.mat, "batch matrix log");
  }
}

// ---------------------------------------------------------------------------
// Adaptive-controller leg: with AdaptiveCheckPolicy driving the check
// cadence, the interval trajectory is a pure function of the committed
// fault counts — so solution bits, residuals, fault logs, check counts AND
// the trajectory itself must be identical at every thread count, with obs
// on or off, clean and faulty alike.
// ---------------------------------------------------------------------------

TEST(ThreadDeterminism, AdaptiveCgSolveIsBitwiseThreadCountInvariant) {
  ThreadCountGuard guard;
  struct ObsGuard {
    ~ObsGuard() { obs::set_enabled(true); }
  } obs_guard;
  const auto a = sparse::laplacian_2d(20, 20);
  struct Run {
    std::vector<std::uint64_t> ubits;
    std::vector<double> residuals;
    unsigned iterations = 0;
    std::uint64_t full_checks = 0;
    std::vector<AdaptiveCheckPolicy::IntervalChange> trajectory;
    LogState mat, vec;
  };
  const auto run_cg = [&](bool faulty) {
    FaultLog mlog, vlog;
    auto pa = ProtectedCsr<std::uint32_t, ElemSecded, RowSecded64>::from_csr(
        a, &mlog, DuePolicy::record_only);
    if (faulty) {
      flip_value_bit(pa, 64 * 500 + 11);   // corrected early: pins the interval
      flip_value_bit(pa, 64 * 1800 + 40);  // second chunk, same sweep
    }
    ProtectedVector<VecSecded64> b(a.nrows(), &vlog, DuePolicy::record_only);
    ProtectedVector<VecSecded64> u(a.nrows(), &vlog, DuePolicy::record_only);
    fill(b, 1.0);
    fill(u, 0.0);
    AdaptiveCheckPolicy adaptive;  // fresh per solve: it carries solve state
    solvers::SolveOptions opts;
    opts.tolerance = 1e-9;
    opts.adaptive_policy = &adaptive;
    Run run;
    opts.residual_history = &run.residuals;
    const auto res = solvers::cg_solve(pa, b, u, opts);
    EXPECT_TRUE(res.converged);
    run.iterations = res.iterations;
    run.full_checks = adaptive.full_checks();
    run.trajectory = adaptive.trajectory();
    std::vector<double> got(a.nrows());
    u.extract({got.data(), got.size()});
    for (double v : got) run.ubits.push_back(double_to_bits(v));
    run.mat = LogState::of(mlog);
    run.vec = LogState::of(vlog);
    return run;
  };
  for (const bool faulty : {false, true}) {
    omp_set_num_threads(1);
    obs::set_enabled(true);
    const Run reference = run_cg(faulty);
    EXPECT_GT(reference.mat.checks + reference.vec.checks, 0u);
    // A quiet solve must actually widen, and full checks must stay below
    // one-per-iteration — otherwise this leg proves nothing about skipping.
    if (!faulty) {
      ASSERT_GE(reference.trajectory.size(), 2u);
      EXPECT_LT(reference.full_checks, std::uint64_t{reference.iterations});
    }
    for (int nthreads : kThreadCounts) {
      for (const bool obs_on : {true, false}) {
        omp_set_num_threads(nthreads);
        obs::set_enabled(obs_on);
        const Run run = run_cg(faulty);
        EXPECT_EQ(run.iterations, reference.iterations)
            << nthreads << " threads, obs " << obs_on;
        EXPECT_EQ(run.full_checks, reference.full_checks)
            << nthreads << " threads, obs " << obs_on;
        ASSERT_EQ(run.trajectory.size(), reference.trajectory.size())
            << nthreads << " threads, obs " << obs_on;
        for (std::size_t i = 0; i < run.trajectory.size(); ++i) {
          ASSERT_TRUE(run.trajectory[i] == reference.trajectory[i])
              << "trajectory step " << i << " at " << nthreads << " threads, obs "
              << obs_on;
        }
        ASSERT_EQ(run.ubits.size(), reference.ubits.size());
        for (std::size_t i = 0; i < run.ubits.size(); ++i) {
          ASSERT_EQ(run.ubits[i], reference.ubits[i])
              << "u[" << i << "] at " << nthreads << " threads, obs " << obs_on;
        }
        ASSERT_EQ(run.residuals.size(), reference.residuals.size());
        for (std::size_t i = 0; i < run.residuals.size(); ++i) {
          ASSERT_EQ(double_to_bits(run.residuals[i]),
                    double_to_bits(reference.residuals[i]))
              << "residual " << i << " at " << nthreads << " threads, obs "
              << obs_on;
        }
        expect_same_log(run.mat, reference.mat, "adaptive matrix log");
        expect_same_log(run.vec, reference.vec, "adaptive vector log");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Observability leg: the obs layer only watches the FaultLog commit points,
// so flipping the runtime switch must not move a single bit of any solver
// observable, at any thread count, faults included. This is the contract the
// whole metrics design rests on (obs/metrics.hpp rule 1).
// ---------------------------------------------------------------------------

TEST(ThreadDeterminism, ObsOnOffBitIdentical) {
  ThreadCountGuard guard;
  struct ObsGuard {
    ~ObsGuard() { obs::set_enabled(true); }
  } obs_guard;
  const auto a = sparse::laplacian_2d(20, 20);
  struct Run {
    std::vector<std::uint64_t> ubits;
    std::vector<double> residuals;
    unsigned iterations = 0;
    LogState mat, vec;
  };
  const auto run_cg = [&](bool faulty) {
    FaultLog mlog, vlog;
    auto pa = ProtectedCsr<std::uint32_t, ElemSecded, RowSecded64>::from_csr(
        a, &mlog, DuePolicy::record_only);
    if (faulty) flip_value_bit(pa, 64 * 500 + 11);
    ProtectedVector<VecSecded64> b(a.nrows(), &vlog, DuePolicy::record_only);
    ProtectedVector<VecSecded64> u(a.nrows(), &vlog, DuePolicy::record_only);
    fill(b, 1.0);
    fill(u, 0.0);
    solvers::SolveOptions opts;
    opts.tolerance = 1e-9;
    Run run;
    opts.residual_history = &run.residuals;
    const auto res = solvers::cg_solve(pa, b, u, opts);
    EXPECT_TRUE(res.converged);
    run.iterations = res.iterations;
    std::vector<double> got(a.nrows());
    u.extract({got.data(), got.size()});
    for (double v : got) run.ubits.push_back(double_to_bits(v));
    run.mat = LogState::of(mlog);
    run.vec = LogState::of(vlog);
    return run;
  };
  for (const bool faulty : {false, true}) {
    omp_set_num_threads(1);
    obs::set_enabled(true);
    const Run reference = run_cg(faulty);
    EXPECT_GT(reference.mat.checks + reference.vec.checks, 0u);
    for (int nthreads : kThreadCounts) {
      for (const bool obs_on : {true, false}) {
        omp_set_num_threads(nthreads);
        obs::set_enabled(obs_on);
        const Run run = run_cg(faulty);
        EXPECT_EQ(run.iterations, reference.iterations)
            << nthreads << " threads, obs " << obs_on;
        ASSERT_EQ(run.ubits.size(), reference.ubits.size());
        for (std::size_t i = 0; i < run.ubits.size(); ++i) {
          ASSERT_EQ(run.ubits[i], reference.ubits[i])
              << "u[" << i << "] at " << nthreads << " threads, obs " << obs_on;
        }
        ASSERT_EQ(run.residuals.size(), reference.residuals.size());
        for (std::size_t i = 0; i < run.residuals.size(); ++i) {
          ASSERT_EQ(double_to_bits(run.residuals[i]),
                    double_to_bits(reference.residuals[i]))
              << "residual " << i << " at " << nthreads << " threads, obs "
              << obs_on;
        }
        expect_same_log(run.mat, reference.mat, "matrix log (obs leg)");
        expect_same_log(run.vec, reference.vec, "vector log (obs leg)");
      }
    }
  }
}

#endif  // _OPENMP

}  // namespace
