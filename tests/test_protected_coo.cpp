// ProtectedCoo: COO-format protection (the prior-work format the paper's
// lineage also covers), across all COO schemes.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "abft/protected_coo.hpp"
#include "common/rng.hpp"
#include "faults/injector.hpp"
#include "sparse/generators.hpp"
#include "sparse/vector_ops.hpp"

namespace {

using namespace abft;

template <class CS>
class ProtectedCooTest : public ::testing::Test {};

using AllCooSchemes = ::testing::Types<CooNone, CooSed, CooSecded128, CooCrc32c>;
TYPED_TEST_SUITE(ProtectedCooTest, AllCooSchemes);

TYPED_TEST(ProtectedCooTest, RoundTripPreservesMatrix) {
  const auto a = sparse::laplacian_2d(9, 7);
  auto p = ProtectedCoo<TypeParam>::from_csr(a);
  const auto back = p.to_csr();
  EXPECT_EQ(back.row_ptr(), a.row_ptr());
  EXPECT_EQ(back.cols(), a.cols());
  EXPECT_EQ(back.values(), a.values());
}

TYPED_TEST(ProtectedCooTest, SpmvMatchesCsr) {
  const auto a = sparse::random_spd(90, 5, 17);
  auto p = ProtectedCoo<TypeParam>::from_csr(a);
  Xoshiro256 rng(1);
  std::vector<double> x(a.ncols()), yref(a.nrows()), y(a.nrows());
  for (auto& v : x) v = rng.uniform(-2, 2);
  sparse::spmv(a, x.data(), yref.data());
  p.spmv(x, y);
  for (std::size_t i = 0; i < a.nrows(); ++i) EXPECT_NEAR(y[i], yref[i], 1e-13);
}

TYPED_TEST(ProtectedCooTest, VerifyAllCleanIsQuiet) {
  FaultLog log;
  auto p = ProtectedCoo<TypeParam>::from_csr(sparse::laplacian_2d(8, 8), &log);
  EXPECT_EQ(p.verify_all(), 0u);
  EXPECT_EQ(log.corrected(), 0u);
  EXPECT_EQ(log.uncorrectable(), 0u);
}

TYPED_TEST(ProtectedCooTest, ElementAccessMatches) {
  const auto a = sparse::laplacian_2d(6, 6);
  auto p = ProtectedCoo<TypeParam>::from_csr(a);
  std::size_t k = 0;
  for (std::size_t r = 0; r < a.nrows(); ++r) {
    for (auto kk = a.row_ptr()[r]; kk < a.row_ptr()[r + 1]; ++kk, ++k) {
      const auto el = p.element_at(k);
      EXPECT_EQ(el.row, r);
      EXPECT_EQ(el.col, a.cols()[kk]);
      EXPECT_EQ(el.value, a.values()[kk]);
    }
  }
}

TEST(CooSecded128, EverySingleFlipInElementIsCorrected) {
  Xoshiro256 rng(2);
  for (unsigned bit = 0; bit < 128; ++bit) {
    double values[1] = {rng.uniform(-10, 10)};
    std::uint32_t rows[1] = {static_cast<std::uint32_t>(rng()) & CooSecded128::kIndexMask};
    std::uint32_t cols[1] = {static_cast<std::uint32_t>(rng()) & CooSecded128::kIndexMask};
    CooSecded128::encode_group(values, rows, cols);
    const double v0 = values[0];
    const std::uint32_t r0 = rows[0], c0 = cols[0];

    // Flip bit `bit` of the 128-bit (value, row, col) storage.
    if (bit < 64) {
      values[0] = bits_to_double(flip_bit(double_to_bits(values[0]), bit));
    } else if (bit < 96) {
      rows[0] ^= (1u << (bit - 64));
    } else {
      cols[0] ^= (1u << (bit - 96));
    }
    CooElement out[1];
    const auto outcome = CooSecded128::decode_group(values, rows, cols, out);
    EXPECT_EQ(outcome, CheckOutcome::corrected) << "bit " << bit;
    EXPECT_EQ(values[0], v0) << bit;
    EXPECT_EQ(rows[0], r0) << bit;
    EXPECT_EQ(cols[0], c0) << bit;
  }
}

TEST(CooSecded128, DoubleFlipsAreDetected) {
  Xoshiro256 rng(3);
  for (unsigned i = 0; i < 64; i += 7) {
    for (unsigned j = 0; j < 28; j += 5) {
      double values[1] = {rng.uniform(-10, 10)};
      std::uint32_t rows[1] = {1234};
      std::uint32_t cols[1] = {4321};
      CooSecded128::encode_group(values, rows, cols);
      values[0] = bits_to_double(flip_bit(double_to_bits(values[0]), i));
      cols[0] ^= (1u << j);
      CooElement out[1];
      EXPECT_EQ(CooSecded128::decode_group(values, rows, cols, out),
                CheckOutcome::uncorrectable)
          << i << "," << j;
    }
  }
}

TEST(CooSed, AllSingleFlipsDetected) {
  Xoshiro256 rng(4);
  for (unsigned bit = 0; bit < 128; bit += 3) {
    double values[1] = {rng.uniform(-10, 10)};
    std::uint32_t rows[1] = {77};
    std::uint32_t cols[1] = {99};
    CooSed::encode_group(values, rows, cols);
    if (bit < 64) {
      values[0] = bits_to_double(flip_bit(double_to_bits(values[0]), bit));
    } else if (bit < 96) {
      rows[0] ^= (1u << (bit - 64));
    } else {
      cols[0] ^= (1u << (bit - 96));
    }
    CooElement out[1];
    EXPECT_EQ(CooSed::decode_group(values, rows, cols, out), CheckOutcome::uncorrectable)
        << bit;
  }
}

TEST(CooCrc32c, RandomSingleFlipsAreCorrected) {
  Xoshiro256 rng(5);
  for (int rep = 0; rep < 100; ++rep) {
    double values[4];
    std::uint32_t rows[4], cols[4];
    for (int e = 0; e < 4; ++e) {
      values[e] = rng.uniform(-10, 10);
      rows[e] = static_cast<std::uint32_t>(rng()) & CooCrc32c::kIndexMask;
      cols[e] = static_cast<std::uint32_t>(rng()) & CooCrc32c::kIndexMask;
    }
    CooCrc32c::encode_group(values, rows, cols);
    double v0[4];
    std::uint32_t r0[4], c0[4];
    for (int e = 0; e < 4; ++e) {
      v0[e] = values[e];
      r0[e] = rows[e];
      c0[e] = cols[e];
    }
    const auto e = rng.below(4);
    const auto which = rng.below(3);
    if (which == 0) {
      values[e] = bits_to_double(flip_bit(double_to_bits(values[e]), rng.below(64)));
    } else if (which == 1) {
      rows[e] ^= (1u << rng.below(32));
    } else {
      cols[e] ^= (1u << rng.below(32));
    }
    CooElement out[4];
    EXPECT_EQ(CooCrc32c::decode_group(values, rows, cols, out), CheckOutcome::corrected)
        << rep;
    for (int k = 0; k < 4; ++k) {
      EXPECT_EQ(values[k], v0[k]);
      EXPECT_EQ(rows[k], r0[k]);
      EXPECT_EQ(cols[k], c0[k]);
    }
  }
}

TEST(ProtectedCooFaults, SpmvSurvivesCorruptedIndices) {
  const auto a = sparse::laplacian_2d(10, 10);
  FaultLog log;
  auto p = ProtectedCoo<CooNone>::from_csr(a, &log, DuePolicy::record_only);
  p.raw_rows()[5] = 0x0FFFFFFFu;  // out of range, undetectable with CooNone
  std::vector<double> x(a.ncols(), 1.0), y(a.nrows());
  p.spmv(x, y);  // must not crash
  EXPECT_GE(log.bounds_violations(), 1u);
}

TEST(ProtectedCooFaults, SecdedCorrectsFlipDuringSpmv) {
  const auto a = sparse::laplacian_2d(10, 10);
  FaultLog log;
  auto p = ProtectedCoo<CooSecded128>::from_csr(a, &log, DuePolicy::record_only);
  auto vals = p.raw_values();
  faults::flip_bit({reinterpret_cast<std::uint8_t*>(vals.data()), vals.size_bytes()},
                   64 * 11 + 40);
  std::vector<double> x(a.ncols(), 1.0), yref(a.nrows()), y(a.nrows());
  sparse::spmv(a, x.data(), yref.data());
  p.spmv(x, y);
  EXPECT_GE(log.corrected(), 1u);
  for (std::size_t i = 0; i < a.nrows(); ++i) EXPECT_EQ(y[i], yref[i]);
}

TEST(ProtectedCooLimits, RejectsOversizedDimensions) {
  sparse::CsrMatrix wide(1, std::size_t{1} << 29);
  wide.row_ptr() = {0, 1};
  wide.cols() = {(1u << 29) - 1};
  wide.values() = {1.0};
  EXPECT_THROW((ProtectedCoo<CooSecded128>::from_csr(wide)), std::invalid_argument);
  EXPECT_NO_THROW((ProtectedCoo<CooSed>::from_csr(wide)));
}

}  // namespace
