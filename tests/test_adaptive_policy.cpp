// AdaptiveCheckPolicy: the online check-interval controller, its committed
// fault-count inputs, and the obs-registry/FaultLog degradation path.
// End-to-end determinism across thread and worker counts is covered by
// test_thread_determinism.cpp and test_service.cpp; this suite pins the
// transition function itself.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "abft/check_policy.hpp"
#include "common/fault_log.hpp"
#include "obs/metrics.hpp"

namespace {

using namespace abft;

// Drive one check window: the decision at `iter` plus the bounds-only
// iterations until the next scheduled check.
CheckMode decide(AdaptiveCheckPolicy& p, std::uint64_t iter,
                 std::uint64_t corrected, std::uint64_t uncorrectable) {
  return p.begin_iteration(iter, {corrected, uncorrectable});
}

TEST(AdaptivePolicy, FirstDecisionAlwaysChecks) {
  AdaptiveCheckPolicy p;
  EXPECT_EQ(decide(p, 0, 0, 0), CheckMode::full);
  EXPECT_EQ(p.full_checks(), 1u);
  EXPECT_EQ(p.interval(), 1u);
}

TEST(AdaptivePolicy, PrimingAbsorbsPreSolveCounts) {
  // Faults committed before the solve (encode-time sweeps, earlier solves
  // against the same log) are not this solve's evidence: the first call
  // snapshots them, so a quiet solve still widens.
  AdaptiveConfig cfg;
  cfg.quiet_windows = 1;
  AdaptiveCheckPolicy p(cfg);
  EXPECT_EQ(decide(p, 0, 500, 7), CheckMode::full);
  EXPECT_FALSE(p.recommends_escalation());
  EXPECT_EQ(decide(p, 1, 500, 7), CheckMode::full);  // clean window
  EXPECT_EQ(p.interval(), 2u);
}

TEST(AdaptivePolicy, QuietWindowsDoubleTowardMax) {
  AdaptiveConfig cfg;
  cfg.quiet_windows = 2;
  cfg.max_interval = 8;
  AdaptiveCheckPolicy p(cfg);
  std::uint64_t iter = 0;
  EXPECT_EQ(decide(p, iter, 0, 0), CheckMode::full);  // first window: no history
  std::vector<unsigned> widths;
  for (int window = 0; window < 10; ++window) {
    iter += p.interval();
    EXPECT_EQ(decide(p, iter, 0, 0), CheckMode::full);
    widths.push_back(p.interval());
  }
  // The historyless first window (before the loop) never counts; after it,
  // every second clean window doubles, capped at max_interval. The recorded
  // value is the interval chosen AT each window's decision, so the doubling
  // lands on the second window of each quiet pair.
  EXPECT_EQ(widths, (std::vector<unsigned>{1, 2, 2, 4, 4, 8, 8, 8, 8, 8}));
  EXPECT_TRUE(p.requires_final_sweep());
}

TEST(AdaptivePolicy, SkipsBetweenChecksAndChecksOnSchedule) {
  AdaptiveConfig cfg;
  cfg.quiet_windows = 1;
  AdaptiveCheckPolicy p(cfg);
  EXPECT_EQ(decide(p, 0, 0, 0), CheckMode::full);
  EXPECT_EQ(decide(p, 1, 0, 0), CheckMode::full);   // widens to 2 after this
  EXPECT_EQ(decide(p, 2, 0, 0), CheckMode::bounds_only);
  EXPECT_EQ(decide(p, 3, 0, 0), CheckMode::full);   // widens to 4
  EXPECT_EQ(decide(p, 4, 0, 0), CheckMode::bounds_only);
  EXPECT_EQ(decide(p, 5, 0, 0), CheckMode::bounds_only);
  EXPECT_EQ(decide(p, 6, 0, 0), CheckMode::bounds_only);
  EXPECT_EQ(decide(p, 7, 0, 0), CheckMode::full);
  EXPECT_EQ(p.full_checks(), 4u);
}

TEST(AdaptivePolicy, CorrectedFaultJumpsStraightToTheFloor) {
  AdaptiveConfig cfg;
  cfg.quiet_windows = 1;
  cfg.max_interval = 16;
  AdaptiveCheckPolicy p(cfg);
  // Widen to 16 first.
  std::uint64_t iter = 0;
  (void)decide(p, iter, 0, 0);
  while (p.interval() < 16) {
    iter += p.interval();
    (void)decide(p, iter, 0, 0);
  }
  ASSERT_EQ(p.interval(), 16u);
  // A corrected fault at the next check pins to min_interval in one step
  // (bursts cluster), without latching the escalation recommendation.
  iter += p.interval();
  EXPECT_EQ(decide(p, iter, 1, 0), CheckMode::full);
  EXPECT_EQ(p.interval(), 1u);
  EXPECT_FALSE(p.recommends_escalation());
}

TEST(AdaptivePolicy, UncorrectableFaultPinsAndLatchesEscalation) {
  AdaptiveCheckPolicy p;
  (void)decide(p, 0, 0, 0);
  EXPECT_EQ(decide(p, 1, 0, 1), CheckMode::full);
  EXPECT_EQ(p.interval(), p.config().min_interval);
  EXPECT_TRUE(p.recommends_escalation());
  // The latch survives later quiet windows: the scheme already failed once.
  for (std::uint64_t it = 2; it < 40; ++it) (void)decide(p, it, 0, 1);
  EXPECT_TRUE(p.recommends_escalation());
}

TEST(AdaptivePolicy, RecommendedSchemeEscalationLadder) {
  using ecc::Scheme;
  EXPECT_EQ(AdaptiveCheckPolicy::recommended_scheme(Scheme::none), Scheme::secded64);
  EXPECT_EQ(AdaptiveCheckPolicy::recommended_scheme(Scheme::sed), Scheme::secded64);
  EXPECT_EQ(AdaptiveCheckPolicy::recommended_scheme(Scheme::secded64), Scheme::crc32c);
  EXPECT_EQ(AdaptiveCheckPolicy::recommended_scheme(Scheme::secded128), Scheme::crc32c);
  EXPECT_EQ(AdaptiveCheckPolicy::recommended_scheme(Scheme::crc32c), Scheme::crc32c);
  EXPECT_EQ(AdaptiveCheckPolicy::recommended_scheme(Scheme::crc32c_tile),
            Scheme::crc32c_tile);
}

TEST(AdaptivePolicy, ConfigSanitizesDegenerateBounds) {
  AdaptiveConfig cfg;
  cfg.min_interval = 0;  // clamps to 1, like CheckIntervalPolicy(0)
  cfg.max_interval = 0;  // clamps up to min
  cfg.quiet_windows = 0;
  AdaptiveCheckPolicy p(cfg);
  EXPECT_EQ(p.config().min_interval, 1u);
  EXPECT_EQ(p.config().max_interval, 1u);
  EXPECT_EQ(p.config().quiet_windows, 1u);
  EXPECT_FALSE(p.requires_final_sweep());  // can never widen past 1
  for (std::uint64_t it = 0; it < 6; ++it) {
    EXPECT_EQ(decide(p, it, 0, 0), CheckMode::full);
  }
}

TEST(AdaptivePolicy, TrajectoryIsAPureFunctionOfTheInputSequence) {
  // Same (iter, committed) sequence => identical trajectory and identical
  // check pattern. This is the property the thread/worker determinism
  // suites rely on: the inputs are serial-point committed counts, so equal
  // inputs is all the controller needs for bit-identical behavior.
  const auto run = [] {
    AdaptiveCheckPolicy p;
    std::vector<CheckMode> modes;
    std::uint64_t corrected = 0, uncorrectable = 0;
    for (std::uint64_t it = 0; it < 200; ++it) {
      if (it == 40 || it == 42 || it == 44) ++corrected;  // a burst
      if (it == 120) ++uncorrectable;                     // one DUE
      modes.push_back(p.begin_iteration(it, {corrected, uncorrectable}));
    }
    return std::make_pair(modes, p.trajectory());
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
  ASSERT_FALSE(a.second.empty());
  EXPECT_EQ(a.second.front().iteration, 0u);
}

TEST(FaultTotals, CommittedSumsSkipNullsAndAliases) {
  FaultLog m, v;
  m.add_checks(10);
  for (int i = 0; i < 3; ++i) m.record(Region::csr_values, CheckOutcome::corrected, i);
  m.record(Region::csr_values, CheckOutcome::uncorrectable, 9);
  m.record_bounds_violation(Region::csr_cols, 11);
  for (int i = 0; i < 2; ++i) v.record(Region::dense_vector, CheckOutcome::corrected, i);

  // The solver passes {matrix log, rhs log, solution log}; rhs and solution
  // often alias the matrix log, and batch paths can carry nulls.
  const auto o = committed_fault_totals({&m, &v, &m, nullptr, &v});
  EXPECT_EQ(o.corrected, 5u);
  EXPECT_EQ(o.uncorrectable, 2u);  // DUE + bounds violation
  EXPECT_EQ(o.total(), 7u);

  const FaultLog* logs[] = {&m, &m};
  const auto dedup = committed_fault_totals(logs, 2);
  EXPECT_EQ(dedup.corrected, 3u);
  EXPECT_EQ(dedup.uncorrectable, 2u);
}

TEST(FaultTotals, ObservedDegradesGracefullyToFaultLogCounts) {
  // With obs compiled in, the record() calls below publish to the global
  // registry and observed_fault_totals reads it back; with -DABFT_OBS=OFF
  // (or the registry otherwise empty of checks) it falls back to the log's
  // own counters. Either way the caller sees the same per-log totals — the
  // graceful-degradation contract the advisor relies on. Declared before
  // any add_checks() in this suite so the obs-on path stays comparable.
  FaultLog log;
  for (int i = 0; i < 4; ++i) log.record(Region::ell_values, CheckOutcome::corrected, i);
  for (int i = 0; i < 2; ++i)
    log.record(Region::ell_cols, CheckOutcome::uncorrectable, i);
  const auto o = observed_fault_totals(&log);
  EXPECT_GE(o.corrected, 4u);
  EXPECT_GE(o.uncorrectable, 2u);
  if (!obs::enabled()) {  // obs compiled out: exactly the log's counts
    EXPECT_EQ(o.corrected, 4u);
    EXPECT_EQ(o.uncorrectable, 2u);
    EXPECT_EQ(observed_fault_totals(nullptr).total(), 0u);
  }
}

TEST(FaultTotals, ObservedReadsProcessTotalsOnceTheRegistryIsLive) {
  if (!obs::enabled()) GTEST_SKIP() << "obs compiled out or disabled";
  obs::count_checks(1);  // a live registry always has checks
  const auto before = observed_fault_totals(nullptr);
  obs::count_corrected();
  obs::count_corrected();
  obs::count_uncorrectable();

  // A fallback log with different counts must be ignored: the registry has
  // checks, so the process-wide totals win.
  FaultLog decoy;
  decoy.record(Region::other, CheckOutcome::corrected, 0);
  const auto after = observed_fault_totals(&decoy);
  EXPECT_EQ(after.corrected, before.corrected + 3);  // 2 direct + 1 via decoy
  EXPECT_EQ(after.uncorrectable, before.uncorrectable + 1);
  EXPECT_NE(after.corrected, decoy.corrected());
}

}  // namespace
